"""Hardware substrate: simulator of the paper's FPGA architecture.

The paper evaluates on a Convey HC-2 with a Virtex-5 XC5VLX330 we do
not have; this package substitutes a faithful simulator (see DESIGN.md
for the substitution argument).  Modules:

* :mod:`repro.hw.params` — architecture/platform configuration.
* :mod:`repro.hw.fp_ops` — pipelined IEEE-754 operator models.
* :mod:`repro.hw.fifo`, :mod:`repro.hw.bram`, :mod:`repro.hw.offchip` —
  storage and interconnect.
* :mod:`repro.hw.preprocessor`, :mod:`repro.hw.jacobi_unit`,
  :mod:`repro.hw.kernels` — the three computational components.
* :mod:`repro.hw.scheduler` — event-driven co-simulation.
* :mod:`repro.hw.timing_model` — closed-form cycle model (Table I).
* :mod:`repro.hw.resources` — device utilization model (Table II).
* :mod:`repro.hw.architecture` — the user-facing accelerator facade.
"""

from repro.hw.architecture import AcceleratorOutcome, HestenesJacobiAccelerator
from repro.hw.params import (
    PAPER_ARCH,
    ArchitectureParams,
    FifoSpec,
    FloatCoreLatencies,
    PlatformParams,
)
from repro.hw.resources import TABLE2_PAPER, CoreCosts, ResourceReport, estimate_resources
from repro.hw.datasheet import render_datasheet
from repro.hw.netlist import Netlist, build_netlist
from repro.hw.pipeline import StreamSchedule, schedule_stream
from repro.hw.scheduler import SimulationOutcome, simulate_decomposition
from repro.hw.sweep import DesignPoint, explore_design_space, pareto_front
from repro.hw.timing_model import CycleBreakdown, estimate_cycles, estimate_seconds
from repro.hw.trace import ExecutionTrace, build_trace, render_gantt
from repro.hw.verification import run_coverification

__all__ = [
    "PAPER_ARCH",
    "TABLE2_PAPER",
    "AcceleratorOutcome",
    "ArchitectureParams",
    "CoreCosts",
    "CycleBreakdown",
    "DesignPoint",
    "ExecutionTrace",
    "FifoSpec",
    "FloatCoreLatencies",
    "HestenesJacobiAccelerator",
    "Netlist",
    "PlatformParams",
    "ResourceReport",
    "SimulationOutcome",
    "StreamSchedule",
    "build_netlist",
    "schedule_stream",
    "build_trace",
    "estimate_cycles",
    "estimate_resources",
    "estimate_seconds",
    "explore_design_space",
    "pareto_front",
    "render_datasheet",
    "render_gantt",
    "run_coverification",
    "simulate_decomposition",
]
