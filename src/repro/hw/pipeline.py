"""Stream scheduling: decomposing a queue of matrices on one accelerator.

The applications that motivate the paper are *streams* of
decompositions — RPCA iterations, video batches, corpus shards.  On
the real device, the Hestenes preprocessor is idle once it hands D to
the sweep machinery of matrix t, so the *next* matrix's Gram phase can
overlap the current matrix's sweeps (double-buffered input and a second
covariance bank permitting — the model charges BRAM for it via the
``double_buffered`` flag).

``schedule_stream`` computes completion times under three policies and
quantifies the overlap win; the queueing maths is the standard two-
stage pipeline bound: makespan >= max(sum of stage-1, sum of stage-2)
and the schedule achieves it within one stage fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.hw.timing_model import estimate_cycles

__all__ = ["StreamJob", "StreamSchedule", "schedule_stream"]


@dataclass(frozen=True)
class StreamJob:
    """One queued decomposition and its cycle profile."""

    index: int
    m: int
    n: int
    gram_cycles: int
    sweep_cycles: int  # sweeps + finalize
    start: int
    done: int

    @property
    def total_cycles(self) -> int:
        return self.gram_cycles + self.sweep_cycles


@dataclass
class StreamSchedule:
    """Schedule of a matrix stream on the accelerator."""

    jobs: list
    makespan: int
    serial_cycles: int
    policy: str

    @property
    def overlap_saving(self) -> float:
        """Fraction of serial time saved by pipelining (0 for serial)."""
        if self.serial_cycles == 0:
            return 0.0
        return 1.0 - self.makespan / self.serial_cycles

    def seconds(self, arch: ArchitectureParams = PAPER_ARCH) -> float:
        return arch.seconds(self.makespan)


def schedule_stream(
    shapes,
    arch: ArchitectureParams = PAPER_ARCH,
    *,
    policy: str = "pipelined",
) -> StreamSchedule:
    """Schedule decompositions of *shapes* = [(m, n), ...].

    Policies
    --------
    "serial"
        One matrix at a time (no overlap): makespan = sum of totals.
    "pipelined"
        The preprocessor works on matrix t+1's Gram while the sweep
        machinery finishes matrix t — a two-stage flow-shop in arrival
        order.  Requires the double-buffered input/covariance banks;
        callers should check the resource model with
        ``estimate_resources(..., max_cols=...)`` head-room before
        assuming it on real hardware.
    """
    if policy not in ("serial", "pipelined"):
        raise ValueError(f'policy must be "serial" or "pipelined", got {policy!r}')
    shapes = list(shapes)
    profiles = []
    for m, n in shapes:
        bd = estimate_cycles(m, n, arch)
        profiles.append((m, n, bd.gram_phase, bd.sweep_total + bd.finalize))

    jobs: list[StreamJob] = []
    serial_total = sum(g + s for _, _, g, s in profiles)
    if policy == "serial":
        t = 0
        for idx, (m, n, g, s) in enumerate(profiles):
            jobs.append(StreamJob(idx, m, n, g, s, start=t, done=t + g + s))
            t += g + s
        return StreamSchedule(jobs=jobs, makespan=t, serial_cycles=serial_total,
                              policy=policy)

    # Two-stage flow shop (Johnson timing in arrival order): the
    # preprocessor (stage 1) and the sweep engines (stage 2).
    stage1_free = 0
    stage2_free = 0
    for idx, (m, n, g, s) in enumerate(profiles):
        start = stage1_free
        gram_done = start + g
        stage1_free = gram_done
        sweep_start = max(gram_done, stage2_free)
        done = sweep_start + s
        stage2_free = done
        jobs.append(StreamJob(idx, m, n, g, s, start=start, done=done))
    makespan = stage2_free if jobs else 0
    return StreamSchedule(jobs=jobs, makespan=makespan, serial_cycles=serial_total,
                          policy=policy)
