"""Architecture and platform parameters of the Hestenes-Jacobi accelerator.

Defaults reproduce the paper's build exactly (Section VI-A):

* Xilinx Virtex-5 XC5VLX330 on a Convey HC-2 hybrid system, 150 MHz.
* Hestenes preprocessor: four layers of multiplier-arrays,
  16 multipliers + 16 adders; reconfigured into four update kernels
  (16 multipliers + 8 adders) after the first sweep.
* Jacobi rotation component: 1 multiplier, 2 adders, 1 divider,
  1 square-root unit — issues 8 independent rotations every 64 cycles.
* Update operator: eight update kernels = 32 multipliers and 16
  adders/subtractors.
* Coregen IEEE-754 double cores with default latencies 9 / 14 / 57 / 57
  cycles (mul / add-sub / div / sqrt).
* Two groups of eight 64-bit FIFOs (in/out) and one group of eight
  127-bit FIFOs between preprocessor and update operator.
* On-chip covariance storage sufficient for column dimension <= 256;
  larger matrices spill to off-chip memory.
* Six sweeps ("iterations") per decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "FloatCoreLatencies",
    "FifoSpec",
    "PlatformParams",
    "ArchitectureParams",
    "PAPER_ARCH",
]


@dataclass(frozen=True)
class FloatCoreLatencies:
    """Pipeline latencies (cycles) of the Coregen double-precision cores.

    All cores have an initiation interval of 1: one new operation can
    enter every cycle; the result appears ``latency`` cycles later.
    """

    mul: int = 9
    add: int = 14  # also subtract
    div: int = 57
    sqrt: int = 57

    def __post_init__(self) -> None:
        for name in ("mul", "add", "div", "sqrt"):
            if getattr(self, name) < 1:
                raise ValueError(f"latency {name} must be >= 1")

    @property
    def rotation_critical_path(self) -> int:
        """Cycles from operands-in to cos/sin/t-out through eq. (8)-(10).

        Critical path: subtract (n2-n1) -> multiply (squares) -> add ->
        sqrt (the inner radical) -> add (denominator) -> divide ->
        sqrt (eq. 9/10 outer radical).
        """
        return (
            self.add + self.mul + self.add + self.sqrt + self.add + self.div + self.sqrt
        )

    @property
    def update_fill(self) -> int:
        """Update-kernel pipeline fill: multiply then add/sub (eq. 11-12)."""
        return self.mul + self.add


@dataclass(frozen=True)
class FifoSpec:
    """One FIFO group: *count* FIFOs, each *width_bits* wide, *depth* deep."""

    count: int
    width_bits: int
    depth: int = 512

    def __post_init__(self) -> None:
        if self.count < 1 or self.width_bits < 1 or self.depth < 1:
            raise ValueError("FifoSpec fields must all be >= 1")

    @property
    def total_bits(self) -> int:
        return self.count * self.width_bits * self.depth


@dataclass(frozen=True)
class PlatformParams:
    """The host platform: FPGA capacity and memory system.

    Defaults model the Convey HC-2's application-engine FPGA
    (Virtex-5 XC5VLX330) and its scatter-gather memory subsystem.
    """

    name: str = "Convey HC-2 / Virtex-5 XC5VLX330"
    luts: int = 207_360  # 6-input slice LUTs on the XC5VLX330
    bram36: int = 288  # 36 Kb block RAMs
    dsp48e: int = 192
    #: Effective off-chip streaming bandwidth for one application
    #: engine.  The HC-2 memory system peaks at ~80 GB/s aggregate
    #: across its 16 DIMM channels; a single-AE design with sequential
    #: row streams sustains a substantial fraction of it.  30 GB/s makes
    #: the cycle model land within ~10% of Table I at n = 1024 while
    #: still showing the paper's >512-column slowdown versus software.
    offchip_bandwidth_gbs: float = 30.0
    offchip_latency_cycles: int = 120

    def __post_init__(self) -> None:
        if min(self.luts, self.bram36, self.dsp48e) < 1:
            raise ValueError("platform capacities must be positive")
        if self.offchip_bandwidth_gbs <= 0:
            raise ValueError("offchip_bandwidth_gbs must be positive")


@dataclass(frozen=True)
class ArchitectureParams:
    """Complete configuration of the accelerator instance."""

    clock_hz: float = 150e6
    latencies: FloatCoreLatencies = field(default_factory=FloatCoreLatencies)

    # Hestenes preprocessor (Fig. 2): layers x multipliers-per-layer.
    preproc_layers: int = 4
    preproc_mults_per_layer: int = 4

    # Update operator: standalone kernels, plus kernels gained by
    # reconfiguring the preprocessor after the first sweep.
    update_kernels: int = 8
    reconfig_kernels: int = 4
    #: Each update kernel retires one element-pair update (eq. 11-12:
    #: 4 multiplies + 1 add + 1 subtract) per cycle once filled.
    kernel_pairs_per_cycle: int = 1

    # Jacobi rotation component: group issue behaviour.
    rotation_group: int = 8
    rotation_issue_cycles: int = 64

    # Paper setting: fixed number of sweeps.
    sweeps: int = 6

    # FIFO inventory (Section VI-A).
    input_fifos: FifoSpec = field(default_factory=lambda: FifoSpec(8, 64))
    output_fifos: FifoSpec = field(default_factory=lambda: FifoSpec(8, 64))
    internal_fifos: FifoSpec = field(default_factory=lambda: FifoSpec(8, 127))

    #: Columns whose full covariance matrix fits in local BRAM; beyond
    #: this the covariance matrix spills to off-chip memory (Section
    #: VI-A: "no greater than 256").
    max_onchip_cols: int = 256

    #: Words the input FIFO group can accept per cycle (8 x 64-bit).
    io_words_per_cycle: int = 8

    platform: PlatformParams = field(default_factory=PlatformParams)

    def __post_init__(self) -> None:
        positive = (
            "preproc_layers",
            "preproc_mults_per_layer",
            "update_kernels",
            "rotation_group",
            "rotation_issue_cycles",
            "sweeps",
            "max_onchip_cols",
            "io_words_per_cycle",
            "kernel_pairs_per_cycle",
        )
        for name in positive:
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.reconfig_kernels < 0:
            raise ValueError("reconfig_kernels must be >= 0")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def preproc_multipliers(self) -> int:
        """Total multipliers in the preprocessor (16 in the paper)."""
        return self.preproc_layers * self.preproc_mults_per_layer

    @property
    def kernels_first_sweep(self) -> int:
        """Update kernels live during sweep 1 (preprocessor still busy)."""
        return self.update_kernels

    @property
    def kernels_later_sweeps(self) -> int:
        """Update kernels after the preprocessor reconfigures (8+4=12)."""
        return self.update_kernels + self.reconfig_kernels

    @property
    def offchip_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed per clock cycle."""
        return self.platform.offchip_bandwidth_gbs * 1e9 / self.clock_hz

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at the design clock."""
        return cycles / self.clock_hz

    def with_(self, **changes) -> "ArchitectureParams":
        """Return a modified copy (convenience wrapper over ``replace``)."""
        return replace(self, **changes)


#: The exact configuration evaluated in the paper.
PAPER_ARCH = ArchitectureParams()
