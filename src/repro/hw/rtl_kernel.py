"""Register-transfer-level model of one update kernel (Fig. 5).

The most detailed fidelity layer: where
:class:`repro.hw.kernels.UpdateKernel` *asserts* "one element-pair per
cycle after a mul+add fill", this model *demonstrates* it by clocking
actual pipeline registers:

    stage 1: four multipliers in parallel (latency = mul),
             ai*cos, aj*sin, ai*sin, aj*cos
    stage 2: one subtractor + one adder (latency = add),
             ai' = ai*cos - aj*sin,  aj' = ai*sin + aj*cos

Each `clock()` shifts every register once; element pairs enter at most
one per cycle and results emerge exactly ``mul + add`` cycles later, in
order, bubbles preserved.  The tests cross-check latency, initiation
interval, and bit-exact numerics against the behavioural kernel — the
same relationship an RTL testbench has to its golden model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.hw.params import FloatCoreLatencies

__all__ = ["PairResult", "UpdateKernelRTL"]

_BUBBLE = None


@dataclass(frozen=True)
class PairResult:
    """One retired element-pair update with its timing."""

    ai_new: float
    aj_new: float
    tag: object
    entered_cycle: int
    retired_cycle: int

    @property
    def latency(self) -> int:
        return self.retired_cycle - self.entered_cycle


class UpdateKernelRTL:
    """Cycle-by-cycle pipeline of the eq. (11)-(12) update kernel.

    Parameters
    ----------
    cos, sin : float
        The rotation parameters loaded into the kernel's operand
        registers for the current stream (hardware latches them from
        the 127-bit FIFO bundle before the column streams in).
    latencies : FloatCoreLatencies
        Pipeline depths.
    """

    def __init__(
        self, cos: float, sin: float, latencies: FloatCoreLatencies | None = None
    ) -> None:
        self.cos = float(cos)
        self.sin = float(sin)
        lat = latencies or FloatCoreLatencies()
        # Pipeline registers: one slot per cycle of latency.
        self._mul_pipe: deque = deque([_BUBBLE] * lat.mul, maxlen=lat.mul)
        self._add_pipe: deque = deque([_BUBBLE] * lat.add, maxlen=lat.add)
        self.cycle = 0
        self.accepted = 0
        self.retired: list[PairResult] = []
        self._latencies = lat

    @property
    def fill_latency(self) -> int:
        return self._latencies.mul + self._latencies.add

    def clock(self, pair=None, tag=None) -> PairResult | None:
        """Advance one cycle, optionally feeding one (ai, aj) pair.

        Returns the pair retired this cycle, if any.  Feeding ``None``
        inserts a bubble (an idle input cycle), which travels through
        the pipeline preserving order.
        """
        self.cycle += 1
        # Stage 2 output: whatever finishes the adder/subtractor now.
        done = self._add_pipe.popleft()
        # Stage 1 -> stage 2 handoff: completed multiplies enter add/sub.
        mul_done = self._mul_pipe.popleft()
        if mul_done is _BUBBLE:
            self._add_pipe.append(_BUBBLE)
        else:
            ai, aj, tag_in, entered = mul_done
            # The four products computed in parallel by stage 1:
            p1 = ai * self.cos
            p2 = aj * self.sin
            p3 = ai * self.sin
            p4 = aj * self.cos
            self._add_pipe.append((p1 - p2, p3 + p4, tag_in, entered))
        # Input: latch at most one new pair into the multiplier pipe.
        if pair is None:
            self._mul_pipe.append(_BUBBLE)
        else:
            ai, aj = pair
            self._mul_pipe.append((float(ai), float(aj), tag, self.cycle))
            self.accepted += 1

        if done is _BUBBLE:
            return None
        ai_new, aj_new, tag_out, entered = done
        result = PairResult(
            ai_new=ai_new,
            aj_new=aj_new,
            tag=tag_out,
            entered_cycle=entered,
            retired_cycle=self.cycle,
        )
        self.retired.append(result)
        return result

    def run_stream(self, pairs) -> list[PairResult]:
        """Stream a sequence of pairs back to back and drain the pipe.

        Returns the retired results in order; the caller can check that
        the total cycle count equals ``len(pairs) + fill_latency``.
        """
        out: list[PairResult] = []
        for idx, pair in enumerate(pairs):
            res = self.clock(pair, tag=idx)
            if res is not None:
                out.append(res)
        # Drain.
        while len(out) < self.accepted:
            res = self.clock()
            if res is not None:
                out.append(res)
        return out

    def utilization(self) -> float:
        """Accepted pairs per elapsed cycle (1.0 = fully streaming)."""
        return self.accepted / self.cycle if self.cycle else 0.0
