"""Accelerator datasheet: one document summarizing the whole design.

Collects the configuration, resource budget, performance grid,
bottleneck attribution and netlist inventory into a single markdown
datasheet — the artifact a hardware team would publish next to the
paper.  ``python -m repro datasheet`` prints it.
"""

from __future__ import annotations

from repro.hw.netlist import build_netlist
from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.hw.resources import estimate_resources
from repro.hw.timing_model import estimate_cycles
from repro.hw.trace import build_trace

__all__ = ["render_datasheet"]

_GRID = (128, 256, 512, 1024)


def render_datasheet(arch: ArchitectureParams = PAPER_ARCH) -> str:
    """Render the full datasheet as markdown."""
    lat = arch.latencies
    rep = estimate_resources(arch)
    netlist = build_netlist(arch)
    ops = netlist.operator_totals()

    lines = [
        "# Hestenes-Jacobi SVD accelerator — datasheet",
        "",
        f"Platform: {arch.platform.name} @ {arch.clock_hz / 1e6:.0f} MHz, "
        f"{arch.sweeps} sweeps per decomposition.",
        "",
        "## Configuration",
        "",
        f"- Hestenes preprocessor: {arch.preproc_layers} layers x "
        f"{arch.preproc_mults_per_layer} multipliers "
        f"({arch.preproc_multipliers} total), reconfigures into "
        f"{arch.reconfig_kernels} update kernels after sweep 1",
        f"- Update operator: {arch.update_kernels} kernels "
        f"(+{arch.reconfig_kernels} reconfigured = "
        f"{arch.kernels_later_sweeps} in sweeps 2+), one element-pair "
        f"update per kernel per cycle",
        f"- Jacobi rotation unit: {arch.rotation_group} rotations issued "
        f"every {arch.rotation_issue_cycles} cycles; operand-to-result "
        f"critical path {lat.rotation_critical_path} cycles",
        f"- FP core latencies (cycles): mul {lat.mul}, add/sub {lat.add}, "
        f"div {lat.div}, sqrt {lat.sqrt}; II = 1 throughout",
        f"- FIFOs: {arch.input_fifos.count}x{arch.input_fifos.width_bits}b in, "
        f"{arch.output_fifos.count}x{arch.output_fifos.width_bits}b out, "
        f"{arch.internal_fifos.count}x{arch.internal_fifos.width_bits}b internal",
        f"- On-chip covariance capacity: {arch.max_onchip_cols} columns; "
        f"beyond that the matrix spills at "
        f"{arch.platform.offchip_bandwidth_gbs:g} GB/s effective",
        "",
        "## Floating-point core inventory",
        "",
        f"- multipliers: {ops.get('mul', 0)}",
        f"- adders/subtractors: {ops.get('add', 0)}",
        f"- dividers: {ops.get('div', 0)}",
        f"- square-root units: {ops.get('sqrt', 0)}",
        "",
        "## Resource utilization",
        "",
        "| resource | used | capacity | fraction |",
        "|---|---|---|---|",
        f"| slice LUTs | {rep.luts:,} | {rep.platform_luts:,} "
        f"| {rep.lut_fraction:.1%} |",
        f"| BRAM36 | {rep.bram_blocks} | {rep.platform_bram} "
        f"| {rep.bram_fraction:.1%} |",
        f"| DSP48E | {rep.dsps} | {rep.platform_dsps} "
        f"| {rep.dsp_fraction:.1%} |",
        "",
        "## Modelled performance (seconds)",
        "",
        "| n \\ m | " + " | ".join(str(m) for m in _GRID) + " |",
        "|---|" + "---|" * len(_GRID),
    ]
    for n in _GRID:
        cells = [f"{estimate_cycles(m, n, arch).seconds:.3g}" for m in _GRID]
        lines.append(f"| {n} | " + " | ".join(cells) + " |")

    lines += [
        "",
        "## Bottleneck attribution (128 x 128 / 1024 x 1024)",
        "",
    ]
    for size in (128, 1024):
        trace = build_trace(estimate_cycles(size, size, arch))
        util = trace.utilization()
        parts = ", ".join(
            f"{k} {v:.0%}" for k, v in sorted(util.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"- {size} x {size}: {parts}")
    lines += [
        "",
        "## Notes",
        "",
        "- Timing from the validated cycle model (Table I within "
        "0.8-1.6x; see EXPERIMENTS.md).",
        "- Resource totals calibrated to the paper's Table II from the "
        "Section VI-A component inventory.",
        "- Structural netlist available as JSON/DOT: "
        "`python -m repro netlist`.",
    ]
    return "\n".join(lines)
