"""Co-verification harness: the simulator's fidelity levels vs each other.

The hardware model exists at four levels — closed-form timing, event
co-simulation, behavioural components, and the register-level kernel —
plus the pure-NumPy functional engines.  This module runs them against
each other across a shape grid and reports the relationships an RTL
verification suite would sign off on:

* **functional**: event-sim singular values == library values (ulp);
* **timing envelope**: analytic <= event <= analytic + per-round
  latency barrier (the documented pipelining approximation);
* **throughput**: the behavioural kernel's stream formula == the
  register-level pipeline's measured cycle count.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocked import blocked_svd
from repro.core.convergence import ConvergenceCriterion
from repro.core.ordering import cyclic_sweep
from repro.eval.report import ExperimentResult
from repro.hw.kernels import UpdateKernel
from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.hw.rtl_kernel import UpdateKernelRTL
from repro.hw.scheduler import simulate_decomposition
from repro.hw.timing_model import estimate_cycles
from repro.util.rng import spawn_rngs

__all__ = ["run_coverification"]

DEFAULT_SHAPES = ((16, 8), (24, 12), (32, 16), (48, 24), (64, 32))


def run_coverification(
    shapes=DEFAULT_SHAPES,
    arch: ArchitectureParams = PAPER_ARCH,
    *,
    seed: int = 404,
) -> ExperimentResult:
    """Cross-check every fidelity level of the hardware model."""
    res = ExperimentResult(
        "coverify",
        "Hardware-model co-verification (analytic vs event vs functional)",
        ["m", "n", "analytic cyc", "event cyc", "ratio", "max sigma diff"],
    )
    lat = arch.latencies
    barrier = lat.rotation_critical_path + lat.update_fill
    all_within_envelope = True
    all_functional = True
    rngs = spawn_rngs(seed, len(shapes))
    for (m, n), rng in zip(shapes, rngs):
        a = rng.standard_normal((m, n))
        sim = simulate_decomposition(a, arch)
        bd = estimate_cycles(m, n, arch)
        lib = blocked_svd(
            a,
            compute_uv=False,
            track_columns="never",
            rotation_impl="dataflow",
            criterion=ConvergenceCriterion(max_sweeps=arch.sweeps, tol=None),
        )
        diff = float(np.max(np.abs(sim.singular_values - lib.s)))
        scale = max(float(lib.s[0]), 1.0)
        rounds_total = len(cyclic_sweep(n)) * arch.sweeps
        upper = bd.total + rounds_total * barrier * 1.3
        within = bd.total * 0.7 <= sim.cycles <= upper
        all_within_envelope = all_within_envelope and within
        all_functional = all_functional and diff <= 1e-12 * scale
        res.add_row(m, n, bd.total, sim.cycles, sim.cycles / bd.total, diff)
    res.check(
        "event cycles inside the analytic envelope at every shape",
        all_within_envelope,
    )
    res.check(
        "event-sim singular values match the library to ~1 ulp",
        all_functional,
    )

    # Behavioural vs register-level kernel throughput.
    stream_len = 200
    behavioural = UpdateKernel(lat).stream(cycle=0, length=stream_len)
    rtl = UpdateKernelRTL(cos=0.8, sin=0.6, latencies=lat)
    rtl.run_stream([(1.0, 2.0)] * stream_len)
    res.check(
        "behavioural kernel formula == register-level pipeline cycles",
        behavioural == rtl.cycle,
        f"{behavioural} vs {rtl.cycle}",
    )
    return res
