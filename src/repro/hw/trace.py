"""Execution traces: what the accelerator spends its cycles on.

Converts a :class:`repro.hw.timing_model.CycleBreakdown` into a
phase-by-phase trace with per-phase bottleneck attribution, and renders
it as an ASCII Gantt chart — the view an architect uses to see where
the paper's ">512-column I/O wall" or the first-sweep column-update
bulge actually lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.timing_model import CycleBreakdown

__all__ = ["PhaseSpan", "ExecutionTrace", "build_trace", "render_gantt"]


@dataclass(frozen=True)
class PhaseSpan:
    """One contiguous phase of the decomposition."""

    name: str
    start: int
    end: int
    bottleneck: str

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Ordered phase spans covering the whole decomposition."""

    spans: list
    total: int

    def utilization(self) -> dict[str, float]:
        """Fraction of total cycles attributed to each bottleneck."""
        out: dict[str, float] = {}
        for span in self.spans:
            out[span.bottleneck] = out.get(span.bottleneck, 0.0) + span.cycles
        return {k: v / self.total for k, v in out.items()}

    def dominant_bottleneck(self) -> str:
        util = self.utilization()
        return max(util, key=util.get)


def build_trace(bd: CycleBreakdown) -> ExecutionTrace:
    """Assemble the phase trace from a cycle breakdown."""
    spans: list[PhaseSpan] = []
    cursor = 0

    gram_bottleneck = (
        "preprocessor-compute"
        if bd.gram_compute >= bd.input_stream
        else "input-streaming"
    )
    spans.append(PhaseSpan("gram", cursor, cursor + bd.gram_phase, gram_bottleneck))
    cursor += bd.gram_phase

    for sw in bd.sweeps:
        contributions = {
            "rotation-issue": sw.rotation_issue,
            "update-kernels": sw.covariance_work + sw.column_work,
            "offchip-io": sw.spill_io,
        }
        bottleneck = max(contributions, key=contributions.get)
        spans.append(
            PhaseSpan(f"sweep-{sw.index}", cursor, cursor + sw.total, bottleneck)
        )
        cursor += sw.total

    spans.append(PhaseSpan("finalize", cursor, cursor + bd.finalize, "sqrt-unit"))
    cursor += bd.finalize
    return ExecutionTrace(spans=spans, total=cursor)


def render_gantt(trace: ExecutionTrace, width: int = 72) -> str:
    """ASCII Gantt chart: one bar row per phase, scaled to *width*."""
    if width < 10:
        raise ValueError("width must be >= 10")
    total = max(trace.total, 1)
    lines = []
    name_w = max(len(s.name) for s in trace.spans)
    for span in trace.spans:
        lead = int(span.start / total * width)
        bar = max(1, int(span.cycles / total * width))
        lines.append(
            f"{span.name:<{name_w}}  "
            + " " * lead
            + "#" * bar
            + f"  {span.cycles:,} cyc ({span.bottleneck})"
        )
    lines.append(f"{'total':<{name_w}}  {trace.total:,} cycles")
    return "\n".join(lines)
