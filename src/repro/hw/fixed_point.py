"""Fixed-point arithmetic and CORDIC — the road not taken.

Section V-B of the paper: "the CORDIC algorithm is a popular choice in
the research literature, due to its advantages on efficiently
performing complicated trigonometric functions through simple
shift-and-add operations.  Although CORDIC has been demonstrated as a
hardware-efficient algorithm for fixed-point operations, its efficient
floating-point implementation is challenged by its inherent bit-width
shift-and-add structure."  The paper therefore uses IEEE-754 double
cores; the earlier FPGA design [12] used fixed point and was limited to
32 x 128 matrices.

This module implements that alternative so the trade-off can be
measured: a saturating Q-format (:class:`QFormat`) and integer-only
CORDIC in vectoring mode (magnitude + angle) and rotation mode — the
exact primitives a fixed-point Jacobi datapath is built from.
:mod:`repro.baselines.cordic_jacobi` assembles them into a complete
fixed-point Hestenes-Jacobi SVD whose accuracy/dynamic-range failures
are what the paper's floating-point choice avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["QFormat", "CordicCore", "CORDIC_GAIN"]

#: The CORDIC gain K = prod(sqrt(1 + 2^-2i)) for i -> inf.
CORDIC_GAIN = 1.6467602581210654


@dataclass
class QFormat:
    """Signed fixed-point Q(int_bits).(frac_bits) with saturation.

    Values are stored as Python/NumPy int64 raw words; the represented
    value is ``raw / 2**frac_bits``.  Total width is
    ``1 + int_bits + frac_bits`` (sign + integer + fraction) and must
    fit in 63 bits so products can be formed in int64 pairs.

    Saturation events are counted — they are the "dynamic range"
    failures the paper's floating-point datapath avoids.
    """

    int_bits: int = 15
    frac_bits: int = 16
    saturations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        check_positive_int(self.int_bits, name="int_bits")
        check_positive_int(self.frac_bits, name="frac_bits")
        if 1 + self.int_bits + self.frac_bits > 63:
            raise ValueError("total width must fit in 63 bits")

    # -- limits --------------------------------------------------------------

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    @property
    def raw_max(self) -> int:
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def raw_min(self) -> int:
        return -(1 << (self.int_bits + self.frac_bits))

    @property
    def max_value(self) -> float:
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """The quantization step 2^-frac_bits."""
        return 1.0 / self.scale

    # -- conversion -----------------------------------------------------------

    def saturate(self, raw):
        """Clamp raw words into range, counting saturation events."""
        raw = np.asarray(raw, dtype=np.int64)
        over = (raw > self.raw_max) | (raw < self.raw_min)
        n_over = int(np.count_nonzero(over))
        if n_over:
            self.saturations += n_over
            raw = np.clip(raw, self.raw_min, self.raw_max)
        return raw

    def quantize(self, x):
        """Float -> raw fixed-point words (round to nearest, saturate)."""
        x = np.asarray(x, dtype=np.float64)
        scaled = np.rint(x * self.scale)
        # Clip in float space first: float->int64 overflow is UB-ish.
        limit = float(1 << 62)
        scaled = np.clip(scaled, -limit, limit)
        return self.saturate(scaled.astype(np.int64))

    def to_float(self, raw) -> np.ndarray:
        """Raw words -> float values."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    # -- arithmetic -----------------------------------------------------------

    def add(self, a, b):
        """Saturating addition of raw words."""
        return self.saturate(np.asarray(a, np.int64) + np.asarray(b, np.int64))

    def sub(self, a, b):
        return self.saturate(np.asarray(a, np.int64) - np.asarray(b, np.int64))

    def mul(self, a, b):
        """Saturating multiplication: ``(a * b) >> frac_bits``.

        Products are formed through float128-free object math when they
        could exceed int64; for the word widths used here (<= 63 bits)
        the Python-int path is exact.
        """
        a = np.asarray(a, np.int64)
        b = np.asarray(b, np.int64)
        # Exact big-int products, then shift with rounding.
        prod = a.astype(object) * b.astype(object)
        half = 1 << (self.frac_bits - 1)
        shifted = (prod + half) >> self.frac_bits
        return self.saturate(np.array([int(v) for v in np.ravel(shifted)],
                                      dtype=np.int64).reshape(np.shape(prod)))

    def reset_counters(self) -> None:
        self.saturations = 0


class CordicCore:
    """Integer-only CORDIC (circular mode).

    Angles are raw words of the same Q format as the data path (radians
    times 2^frac_bits).  ``iterations`` micro-rotations give roughly
    ``iterations`` bits of angular precision; the amplitude gain K is
    compensated where noted.
    """

    def __init__(self, fmt: QFormat, iterations: int = 24) -> None:
        self.fmt = fmt
        self.iterations = check_positive_int(iterations, name="iterations")
        # atan(2^-i) table in raw angle words.
        self.atan_table = [
            int(round(math.atan(2.0**-i) * fmt.scale)) for i in range(self.iterations)
        ]
        self.gain = self._exact_gain(self.iterations)
        #: Raw multiplier implementing the 1/K amplitude correction.
        self.inv_gain_raw = int(round((1.0 / self.gain) * fmt.scale))

    @staticmethod
    def _exact_gain(iterations: int) -> float:
        g = 1.0
        for i in range(iterations):
            g *= math.sqrt(1.0 + 2.0 ** (-2 * i))
        return g

    # -- vectoring mode: (x, y) -> (K * |v|, atan2(y, x)) ----------------------

    def vectoring(self, x_raw: int, y_raw: int) -> tuple[int, int]:
        """Drive y to zero; returns (magnitude_raw_with_gain, angle_raw).

        Inputs must satisfy x >= 0 (fold the left half-plane before
        calling, as hardware does); the returned magnitude carries the
        CORDIC gain K (divide by :attr:`gain` or multiply by
        ``inv_gain_raw`` to correct).
        """
        x, y, z = int(x_raw), int(y_raw), 0
        if x < 0:
            raise ValueError("vectoring mode requires x >= 0 (pre-fold)")
        for i in range(self.iterations):
            if y > 0:
                x, y, z = x + (y >> i), y - (x >> i), z + self.atan_table[i]
            else:
                x, y, z = x - (y >> i), y + (x >> i), z - self.atan_table[i]
        return x, z

    # -- rotation mode: rotate (x, y) by angle ---------------------------------

    def rotation(self, x_raw: int, y_raw: int, angle_raw: int) -> tuple[int, int]:
        """Rotate the vector by *angle* (raw words); gain-corrected.

        The angle must lie within CORDIC's convergence range
        (|angle| <= ~1.74 rad); Jacobi rotation angles are at most
        pi/4, comfortably inside.
        """
        x, y, z = int(x_raw), int(y_raw), int(angle_raw)
        for i in range(self.iterations):
            if z >= 0:
                x, y, z = x - (y >> i), y + (x >> i), z - self.atan_table[i]
            else:
                x, y, z = x + (y >> i), y - (x >> i), z + self.atan_table[i]
        # Amplitude correction by 1/K in the data format.
        fmt = self.fmt
        x = int(fmt.mul(np.int64(x), np.int64(self.inv_gain_raw)))
        y = int(fmt.mul(np.int64(y), np.int64(self.inv_gain_raw)))
        return x, y

    def rotation_array(self, x_raw, y_raw, angle_raw: int):
        """Rotate many (x, y) pairs by one shared angle — vectorized.

        The rotation-mode decision sequence depends only on the angle
        accumulator z, never on the data, so every element pair of a
        column pair follows the *same* shift-add schedule — which is
        precisely why a hardware CORDIC array can stream a whole column
        through one control sequence.  Returns gain-corrected raw word
        arrays.
        """
        x = np.asarray(x_raw, dtype=np.int64).copy()
        y = np.asarray(y_raw, dtype=np.int64).copy()
        z = int(angle_raw)
        for i in range(self.iterations):
            if z >= 0:
                x, y = x - (y >> i), y + (x >> i)
                z -= self.atan_table[i]
            else:
                x, y = x + (y >> i), y - (x >> i)
                z += self.atan_table[i]
        x = self.fmt.mul(x, np.int64(self.inv_gain_raw))
        y = self.fmt.mul(y, np.int64(self.inv_gain_raw))
        return x, y

    def atan2(self, y_raw: int, x_raw: int) -> int:
        """Full-plane atan2 via vectoring with half-plane folding."""
        if x_raw >= 0:
            _, z = self.vectoring(x_raw, y_raw)
            return z
        # Left half-plane: atan2(y, x) = sign(y)*pi - atan2(y, -x).
        _, z = self.vectoring(-x_raw, y_raw)
        pi_raw = int(round(math.pi * self.fmt.scale))
        return (pi_raw - z) if y_raw >= 0 else (-pi_raw - z)
