"""FIFO model with cycle-stamped entries and occupancy statistics.

The paper's architecture uses three FIFO groups: two groups of eight
64-bit FIFOs synchronizing input and output with the Convey memory
system, and one group of eight 127-bit FIFOs carrying (element, cos,
sin)-style bundles between the Hestenes preprocessor and the Update
operator.  The model enforces capacity, preserves order, and tracks
high-water marks so the co-simulator can verify that the paper's depths
never overflow on the evaluated workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["Fifo", "FifoGroup"]


class FifoOverflowError(RuntimeError):
    """Raised on a push into a full FIFO (backpressure must be modelled)."""


class FifoUnderflowError(RuntimeError):
    """Raised on a pop from an empty FIFO."""


@dataclass
class _Entry:
    value: object
    ready_cycle: int


class Fifo:
    """A single synchronous FIFO.

    Entries carry the cycle at which they become visible to the
    consumer (producer latency), so the simulator can model
    store-and-forward timing without a global event wheel.
    """

    def __init__(self, depth: int, width_bits: int = 64, name: str = "") -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if width_bits < 1:
            raise ValueError("width_bits must be >= 1")
        self.depth = depth
        self.width_bits = width_bits
        self.name = name
        self._q: deque[_Entry] = deque()
        self.pushes = 0
        self.pops = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._q

    def push(self, value, cycle: int = 0) -> None:
        """Enqueue *value*, visible to the consumer from *cycle* on."""
        if self.full:
            raise FifoOverflowError(
                f"FIFO {self.name or id(self)} overflow (depth {self.depth})"
            )
        self._q.append(_Entry(value, cycle))
        self.pushes += 1
        self.high_water = max(self.high_water, len(self._q))

    def pop(self, cycle: int | None = None):
        """Dequeue the oldest entry.

        When *cycle* is given, returns ``(value, visible_cycle)`` where
        ``visible_cycle = max(cycle, entry.ready_cycle)`` — the earliest
        cycle the consumer could actually have read it.
        """
        if self.empty:
            raise FifoUnderflowError(f"FIFO {self.name or id(self)} underflow")
        entry = self._q.popleft()
        self.pops += 1
        if cycle is None:
            return entry.value
        return entry.value, max(cycle, entry.ready_cycle)

    def peek(self):
        if self.empty:
            raise FifoUnderflowError(f"FIFO {self.name or id(self)} underflow")
        return self._q[0].value

    def reset(self) -> None:
        self._q.clear()
        self.pushes = 0
        self.pops = 0
        self.high_water = 0


class FifoGroup:
    """A bank of identical FIFOs addressed round-robin by the producer.

    Mirrors the paper's "group of eight FIFOs": data words are striped
    across the group, widening effective bandwidth to
    ``count * width_bits`` per cycle.
    """

    def __init__(self, count: int, depth: int, width_bits: int, name: str = "") -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.fifos = [Fifo(depth, width_bits, f"{name}[{i}]") for i in range(count)]
        self.name = name
        self._push_idx = 0
        self._pop_idx = 0

    def push(self, value, cycle: int = 0) -> None:
        self.fifos[self._push_idx].push(value, cycle)
        self._push_idx = (self._push_idx + 1) % len(self.fifos)

    def pop(self, cycle: int | None = None):
        out = self.fifos[self._pop_idx].pop(cycle)
        self._pop_idx = (self._pop_idx + 1) % len(self.fifos)
        return out

    def __len__(self) -> int:
        return sum(len(f) for f in self.fifos)

    @property
    def high_water(self) -> int:
        return max(f.high_water for f in self.fifos)

    @property
    def pushes(self) -> int:
        return sum(f.pushes for f in self.fifos)

    def reset(self) -> None:
        for f in self.fifos:
            f.reset()
        self._push_idx = self._pop_idx = 0
