"""Pipelined IEEE-754 double-precision operator models.

Each operator mirrors a Xilinx Coregen floating-point core: a fixed
pipeline latency, an initiation interval of one (a new operation may
enter every cycle), and true float64 arithmetic.  The models are used
by the event-driven simulator to carry both *values* and *timestamps*
through the datapath, and they keep issue statistics so utilization can
be reported per component.

The functional result is computed with NumPy float64 — identical
bit-for-bit to an IEEE-754-compliant hardware core for these operations
(+, -, *, /, sqrt are all correctly rounded in both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["PipelinedOperator", "OperatorBank", "make_operator"]

_OPS = {
    "mul": lambda a, b: a * b,
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "div": lambda a, b: a / b,
    "sqrt": lambda a, b=None: math.sqrt(a),
}


@dataclass
class PipelinedOperator:
    """One pipelined floating-point core.

    Parameters
    ----------
    kind : str
        "mul", "add", "sub", "div" or "sqrt".
    latency : int
        Cycles from issue to result.
    name : str
        Instance label for reports (e.g. ``"jacobi.div0"``).
    """

    kind: str
    latency: int
    name: str = ""
    issues: int = 0
    _last_issue: int = field(default=-1, repr=False)
    busy_until: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in _OPS:
            raise ValueError(f"unknown operator kind {self.kind!r}")
        if self.latency < 1:
            raise ValueError("latency must be >= 1")
        self._fn = _OPS[self.kind]

    def issue(self, cycle: int, a: float, b: float | None = None):
        """Issue one operation at *cycle*.

        Returns ``(ready_cycle, value)``.  Respects the initiation
        interval: at most one issue per cycle; issuing twice in the same
        cycle raises, modelling a structural hazard the scheduler must
        avoid.
        """
        if cycle <= self._last_issue:
            raise RuntimeError(
                f"structural hazard on {self.name or self.kind}: "
                f"issue at cycle {cycle} but last issue was {self._last_issue}"
            )
        self._last_issue = cycle
        self.issues += 1
        ready = cycle + self.latency
        self.busy_until = max(self.busy_until, ready)
        value = self._fn(a, b) if self.kind != "sqrt" else self._fn(a)
        return ready, value

    def next_free(self, cycle: int) -> int:
        """Earliest cycle >= *cycle* at which a new op may issue."""
        return max(cycle, self._last_issue + 1)

    def reset(self) -> None:
        self.issues = 0
        self._last_issue = -1
        self.busy_until = 0


@dataclass
class OperatorBank:
    """A pool of identical operators scheduled round-robin.

    Models an array of cores (e.g. the preprocessor's 16 multipliers):
    ``issue`` places the operation on the earliest-free core.
    """

    kind: str
    latency: int
    count: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        self.cores = [
            PipelinedOperator(self.kind, self.latency, f"{self.name}[{i}]")
            for i in range(self.count)
        ]

    def issue(self, cycle: int, a: float, b: float | None = None):
        """Issue on the first core free at or after *cycle*.

        Returns ``(issue_cycle, ready_cycle, value)`` — the issue cycle
        may be later than requested when all cores are busy that cycle.
        """
        best = min(self.cores, key=lambda c: c.next_free(cycle))
        at = best.next_free(cycle)
        ready, value = best.issue(at, a, b)
        return at, ready, value

    @property
    def issues(self) -> int:
        return sum(c.issues for c in self.cores)

    def utilization(self, total_cycles: int) -> float:
        """Fraction of issue slots used over *total_cycles*."""
        if total_cycles <= 0:
            return 0.0
        return self.issues / (self.count * total_cycles)

    def reset(self) -> None:
        for c in self.cores:
            c.reset()


def make_operator(kind: str, latencies, name: str = "") -> PipelinedOperator:
    """Build an operator with the latency table from ArchitectureParams."""
    lat = {
        "mul": latencies.mul,
        "add": latencies.add,
        "sub": latencies.add,
        "div": latencies.div,
        "sqrt": latencies.sqrt,
    }[kind]
    return PipelinedOperator(kind, lat, name)
