"""Top-level accelerator facade: functional result + cycles + resources.

:class:`HestenesJacobiAccelerator` is the "device" a user of the
reproduction programs against.  ``decompose`` returns the singular
values the hardware would produce together with the modelled execution
time; two timing modes are available:

* ``mode="analytic"`` (default) — functional result from the blocked
  NumPy implementation (bit-compatible with the hardware's rotation
  order and dataflow equations), cycles from the closed-form model.
  Scales to the paper's full 2048-row/column workloads.
* ``mode="event"`` — the component-level co-simulation of
  :mod:`repro.hw.scheduler`; slower, but the cycle count emerges from
  simulated FIFOs/kernels/memory.  Intended for n up to ~64 and used to
  validate the analytic model.

Example
-------
>>> import numpy as np
>>> from repro.hw import HestenesJacobiAccelerator
>>> acc = HestenesJacobiAccelerator()
>>> a = np.random.default_rng(0).standard_normal((64, 16))
>>> out = acc.decompose(a)
>>> bool(np.allclose(out.result.s, np.linalg.svd(a, compute_uv=False)))
True
>>> out.seconds > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocked import blocked_svd
from repro.core.convergence import ConvergenceCriterion
from repro.core.result import SVDResult
from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.hw.resources import ResourceReport, estimate_resources
from repro.hw.scheduler import simulate_decomposition
from repro.hw.timing_model import CycleBreakdown, estimate_cycles
from repro.obs import span
from repro.obs.health import observe_result
from repro.util.validation import as_float_matrix, check_in_choices

__all__ = ["AcceleratorOutcome", "HestenesJacobiAccelerator"]

MODES = ("analytic", "event")


@dataclass
class AcceleratorOutcome:
    """Result of one accelerated decomposition."""

    result: SVDResult
    cycles: int
    seconds: float
    mode: str
    breakdown: CycleBreakdown | None = None
    stats: dict | None = None

    @property
    def s(self) -> np.ndarray:
        """Singular values (descending) — the hardware's ``Sig`` output."""
        return self.result.s


class HestenesJacobiAccelerator:
    """The FPGA Hestenes-Jacobi SVD engine (simulated).

    Parameters
    ----------
    arch : ArchitectureParams
        Hardware configuration; defaults to the paper's build
        (Virtex-5 XC5VLX330 @ 150 MHz, 6 sweeps).
    mode : {"analytic", "event"}
        Timing mode (see module docstring).
    compute_v : bool
        Accumulate right singular vectors.  The paper's hardware emits
        only singular values; V accumulation models the Section VII PCA
        extension and costs extra update streams, which the timing
        model accounts for by treating V columns like matrix columns.
    """

    def __init__(
        self,
        arch: ArchitectureParams = PAPER_ARCH,
        *,
        mode: str = "analytic",
        compute_v: bool = False,
    ) -> None:
        check_in_choices(mode, MODES, name="mode")
        self.arch = arch
        self.mode = mode
        self.compute_v = compute_v

    # ---- main entry -----------------------------------------------------

    def decompose(self, a, *, sweeps: int | None = None) -> AcceleratorOutcome:
        """Decompose *a*; returns values plus modelled execution time."""
        a = as_float_matrix(a, name="a")
        with span(
            "hw.decompose", mode=self.mode, m=a.shape[0], n=a.shape[1]
        ) as dec_span:
            if self.mode == "event":
                out = self._decompose_event(a, sweeps)
            else:
                out = self._decompose_analytic(a, sweeps)
            # The facade calls the engine functions directly (not via
            # hestenes_svd), so the health hook must run here.
            observe_result(out.result, engine=f"hw-{self.mode}")
            dec_span.set_attrs(modeled_cycles=out.cycles, modeled_s=out.seconds)
            return out

    def _decompose_analytic(self, a, sweeps):
        m, n = a.shape
        n_sweeps = self.arch.sweeps if sweeps is None else sweeps
        res = blocked_svd(
            a,
            compute_uv=self.compute_v,
            criterion=ConvergenceCriterion(max_sweeps=n_sweeps, tol=None),
            rotation_impl="dataflow",
            track_columns="first_sweep" if self.compute_v else "never",
        )
        bd = estimate_cycles(
            m, n, self.arch, sweeps=n_sweeps, accumulate_v=self.compute_v
        )
        return AcceleratorOutcome(
            result=res,
            cycles=bd.total,
            seconds=bd.seconds,
            mode="analytic",
            breakdown=bd,
        )

    def _decompose_event(self, a, sweeps):
        m, n = a.shape
        n_sweeps = self.arch.sweeps if sweeps is None else sweeps
        sim = simulate_decomposition(
            a, self.arch, sweeps=n_sweeps, compute_v=self.compute_v
        )
        vt = None
        if sim.v is not None:
            k = min(m, n)
            vt = sim.v.T[:k, :]
        res = SVDResult(
            s=sim.singular_values,
            u=None,
            vt=vt,
            sweeps=n_sweeps,
            trace=sim.trace,
            method="fpga-event",
            converged=True,
        )
        return AcceleratorOutcome(
            result=res,
            cycles=sim.cycles,
            seconds=self.arch.seconds(sim.cycles),
            mode="event",
            stats=sim.stats,
        )

    # ---- models ----------------------------------------------------------

    def estimate(self, m: int, n: int, *, sweeps: int | None = None) -> CycleBreakdown:
        """Cycle/time estimate without running any data (Table I mode)."""
        return estimate_cycles(m, n, self.arch, sweeps=sweeps)

    def estimate_seconds(self, m: int, n: int, **kwargs) -> float:
        """Estimated wall-clock seconds for an m x n decomposition."""
        return self.estimate(m, n, **kwargs).seconds

    def resource_report(self) -> ResourceReport:
        """Device utilization of this configuration (Table II mode)."""
        return estimate_resources(self.arch)

    def __repr__(self) -> str:
        return (
            f"HestenesJacobiAccelerator(mode={self.mode!r}, "
            f"clock={self.arch.clock_hz/1e6:.0f}MHz, sweeps={self.arch.sweeps})"
        )
