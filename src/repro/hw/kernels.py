"""Update kernels: the eq. (11)-(12) streaming engines (Fig. 5).

One kernel holds four pipelined multipliers, one adder and one
subtractor; once its pipeline fills it retires one *element-pair
update* per cycle:

    ``a_i' = a_i*cos - a_j*sin``,  ``a_j' = a_i*sin + a_j*cos``.

The same kernel is used for column elements (first sweep) and for
covariance entries (every sweep) — only the streams differ.  A
:class:`KernelPool` schedules streams onto the earliest-free kernel,
which is how the Update operator's eight kernels (plus the four
reconfigured preprocessor kernels) share the per-rotation work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rotation import RotationParams
from repro.hw.params import FloatCoreLatencies

__all__ = ["UpdateKernel", "KernelPool"]


@dataclass
class UpdateKernel:
    """A single pipelined update kernel.

    Attributes
    ----------
    latencies : FloatCoreLatencies
        Operator latency table; the kernel fill time is mul + add.
    name : str
        Instance label ("update[3]", "preproc-as-update[1]", ...).
    """

    latencies: FloatCoreLatencies
    name: str = ""
    free_at: int = 0
    streams: int = 0
    elements: int = 0

    @property
    def fill(self) -> int:
        return self.latencies.update_fill

    def stream(self, cycle: int, length: int) -> int:
        """Schedule a *length*-element update stream from *cycle*.

        Returns the completion cycle.  Streams are non-preemptive: the
        kernel is busy until the last element has entered; the pipeline
        drain (fill) is paid once per stream.
        """
        if length < 0:
            raise ValueError("length must be >= 0")
        if length == 0:
            return max(cycle, self.free_at)
        start = max(cycle, self.free_at)
        done = start + length + self.fill
        # The next stream may begin once the last element has issued.
        self.free_at = start + length
        self.streams += 1
        self.elements += length
        return done

    @staticmethod
    def apply(mat: np.ndarray, i: int, j: int, params: RotationParams) -> None:
        """Functional column-pair update (the values the stream computes)."""
        if params.identity:
            return
        ci = mat[:, i].copy()
        mat[:, i] = ci * params.cos - mat[:, j] * params.sin
        mat[:, j] = ci * params.sin + mat[:, j] * params.cos

    def reset(self) -> None:
        self.free_at = 0
        self.streams = 0
        self.elements = 0


class KernelPool:
    """Earliest-free scheduling over a set of update kernels.

    Mirrors the Update operator's dispatch: each rotation's update
    streams (one per affected column pair / covariance row) go to
    whichever kernel frees first.
    """

    def __init__(self, kernels: list[UpdateKernel]) -> None:
        if not kernels:
            raise ValueError("KernelPool needs at least one kernel")
        self.kernels = list(kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def extend(self, kernels: list[UpdateKernel]) -> None:
        """Add kernels (the preprocessor reconfiguring after sweep 1)."""
        self.kernels.extend(kernels)

    def dispatch(self, cycle: int, lengths: list[int]) -> int:
        """Schedule one stream per entry of *lengths*; returns last done.

        Greedy earliest-free assignment — optimal for identical
        machines with equal-length streams, and what a round-robin
        hardware arbiter achieves for the uniform streams here.
        """
        done = cycle
        for length in lengths:
            k = min(self.kernels, key=lambda k: k.free_at)
            done = max(done, k.stream(cycle, length))
        return done

    def dispatch_work(self, cycle: int, total_elements: int) -> int:
        """Schedule *total_elements* split evenly across the pool.

        Used for aggregated accounting when per-stream granularity is
        not needed (e.g. a whole group's covariance updates).
        """
        if total_elements < 0:
            raise ValueError("total_elements must be >= 0")
        if total_elements == 0:
            return cycle
        per = total_elements // len(self.kernels)
        extra = total_elements % len(self.kernels)
        lengths = [per + (1 if i < extra else 0) for i in range(len(self.kernels))]
        return self.dispatch(cycle, [ln for ln in lengths if ln > 0])

    @property
    def free_at(self) -> int:
        """Cycle when every kernel is idle."""
        return max(k.free_at for k in self.kernels)

    @property
    def total_elements(self) -> int:
        return sum(k.elements for k in self.kernels)

    def reset(self) -> None:
        for k in self.kernels:
            k.reset()
