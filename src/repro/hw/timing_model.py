"""Closed-form cycle model of the accelerator (regenerates Table I).

The model follows the phase structure of Section V/VI:

1. **Gram phase** (first sweep only): the Hestenes preprocessor computes
   all n(n+1)/2 squared norms and covariances.  Work =
   ``m * n(n+1)/2`` multiplies at ``P = layers * width`` multiplies per
   cycle, overlapped with streaming A through the input FIFO group.
2. **Sweeps**: each cyclic round issues its pairs to the Jacobi
   rotation component in groups of 8 every 64 cycles, while the update
   kernels retire one element-pair update per kernel per cycle:

   * covariance updates: ``(n - 2)`` pair-updates per rotation
     (Algorithm 1 lines 18-26), every sweep;
   * column updates: ``m`` pair-updates per rotation (eq. 11-12),
     first sweep only (the paper's ``track_columns="first_sweep"``);
   * sweep 1 runs with the 8 standalone kernels; later sweeps gain the
     4 reconfigured preprocessor kernels (12 total).

   A round costs ``max(rotation issue, kernel work, off-chip I/O)`` —
   the three engines stream concurrently — and each sweep pays one
   pipeline drain (rotation critical path + kernel fill).
3. **Spill I/O**: when n exceeds the on-chip limit (256 columns), the
   covariance entries beyond the local budget are re-streamed
   (read + write) every round through the off-chip interface.
4. **Finalization**: n square roots through the rotation component's
   sqrt core (II = 1).

Validation against the paper's Table I (150 MHz, 6 sweeps):
128x128 -> 4.2 ms (paper 4.39), 256x256 -> 33.5 ms (paper 33.0),
512x512 -> 0.27 s (paper 0.263), 1024x1024 -> 2.2 s (paper 2.01).
See EXPERIMENTS.md for the full grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.ordering import cyclic_sweep
from repro.hw.bram import covariance_words
from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.obs import span
from repro.obs.health import record_hw_estimate
from repro.util.validation import check_positive_int

__all__ = ["SweepCycles", "CycleBreakdown", "estimate_cycles", "estimate_seconds"]


@dataclass(frozen=True)
class SweepCycles:
    """Cycle accounting for one sweep."""

    index: int
    rotation_issue: int
    covariance_work: int
    column_work: int
    spill_io: int
    drain: int
    total: int


@dataclass
class CycleBreakdown:
    """Full decomposition cycle count with per-phase attribution."""

    m: int
    n: int
    arch: ArchitectureParams
    input_stream: int = 0
    gram_compute: int = 0
    gram_phase: int = 0  # max(input, compute) + fill
    sweeps: list[SweepCycles] = field(default_factory=list)
    finalize: int = 0
    total: int = 0

    @property
    def seconds(self) -> float:
        return self.arch.seconds(self.total)

    @property
    def sweep_total(self) -> int:
        return sum(s.total for s in self.sweeps)

    def phase_seconds(self) -> dict[str, float]:
        """Seconds per phase — the quantities Fig. 7/8 discussions cite."""
        return {
            "gram": self.arch.seconds(self.gram_phase),
            "sweeps": self.arch.seconds(self.sweep_total),
            "finalize": self.arch.seconds(self.finalize),
            "total": self.seconds,
        }


def _round_sizes(n: int) -> list[int]:
    """Pairs per cyclic round (n-1 rounds of n/2 for even n)."""
    return [len(r) for r in cyclic_sweep(n)]


def estimate_cycles(
    m: int,
    n: int,
    arch: ArchitectureParams = PAPER_ARCH,
    *,
    sweeps: int | None = None,
    update_columns_first_sweep: bool = True,
    accumulate_v: bool = False,
) -> CycleBreakdown:
    """Cycle estimate for decomposing an m x n matrix.

    Parameters
    ----------
    m, n : int
        Row and column dimensions.  As in the paper, the column count n
        drives the dominant O(n^3) covariance-update work; m only enters
        the Gram phase and the first sweep's column updates.
    arch : ArchitectureParams
        Hardware configuration (defaults to the paper's build).
    sweeps : int, optional
        Override the architecture's sweep count.
    update_columns_first_sweep : bool
        Model the eq. (11)-(12) column updates in sweep 1 (the paper's
        behaviour).  Disable for the pure singular-value mode.
    accumulate_v : bool
        Model right-singular-vector accumulation (the Section VII PCA
        extension): each rotation additionally streams one n-element
        V-column pair through the update kernels, every sweep.
    """
    m = check_positive_int(m, name="m")
    n = check_positive_int(n, name="n")
    n_sweeps = arch.sweeps if sweeps is None else check_positive_int(sweeps, name="sweeps")
    lat = arch.latencies
    bd = CycleBreakdown(m=m, n=n, arch=arch)

    with span("hw.estimate", m=m, n=n, sweeps=n_sweeps) as est_span:
        # ---- Gram phase ---------------------------------------------------
        with span("hw.gram") as gram_span:
            gram_mults = m * n * (n + 1) // 2
            p = arch.preproc_multipliers
            bd.gram_compute = math.ceil(gram_mults / p)
            # Input schedule of Fig. 3: each layer pass covers `layers`
            # rows and needs (n + layers) input cycles; the 8-layer 8x8
            # example in the paper costs exactly (8 + 8) = 16 cycles.
            passes = math.ceil(m / arch.preproc_layers)
            bd.input_stream = passes * (n + arch.preproc_layers)
            fill = lat.mul + arch.preproc_layers * lat.add
            bd.gram_phase = max(bd.gram_compute, bd.input_stream) + fill
            gram_span.set_attrs(
                modeled_cycles=bd.gram_phase,
                modeled_s=arch.seconds(bd.gram_phase),
            )

        # ---- Sweeps -------------------------------------------------------
        sizes = _round_sizes(n)
        spill_words = max(
            0, covariance_words(n) - covariance_words(arch.max_onchip_cols)
        )
        spill_bytes_per_round = 2 * 8 * spill_words  # read + write, 8 B/word
        drain = lat.rotation_critical_path + lat.update_fill

        for s in range(1, n_sweeps + 1):
            with span("hw.sweep", sweep=s) as sweep_span:
                kernels = (
                    arch.kernels_first_sweep
                    if s == 1
                    else arch.kernels_later_sweeps
                )
                issue = cov = col = io = 0
                sweep_total = 0
                for size in sizes:
                    groups = math.ceil(size / arch.rotation_group)
                    r_issue = groups * arch.rotation_issue_cycles
                    r_cov = math.ceil(
                        size * max(0, n - 2)
                        / (kernels * arch.kernel_pairs_per_cycle)
                    )
                    r_col = 0
                    if s == 1 and update_columns_first_sweep:
                        r_col = math.ceil(
                            size * m / (kernels * arch.kernel_pairs_per_cycle)
                        )
                    if accumulate_v:
                        # One V-column pair (n elements) per rotation,
                        # every sweep.
                        r_col += math.ceil(
                            size * n / (kernels * arch.kernel_pairs_per_cycle)
                        )
                    r_io = 0
                    if spill_words:
                        r_io = math.ceil(
                            spill_bytes_per_round / arch.offchip_bytes_per_cycle
                        )
                    issue += r_issue
                    cov += r_cov
                    col += r_col
                    io += r_io
                    sweep_total += max(r_issue, r_cov + r_col, r_io)
                sweep_total += drain
                bd.sweeps.append(
                    SweepCycles(
                        index=s,
                        rotation_issue=issue,
                        covariance_work=cov,
                        column_work=col,
                        spill_io=io,
                        drain=drain,
                        total=sweep_total,
                    )
                )
                sweep_span.set_attrs(
                    modeled_cycles=sweep_total,
                    modeled_s=arch.seconds(sweep_total),
                    rotation_issue=issue,
                    covariance_work=cov,
                    column_work=col,
                    spill_io=io,
                )

        # ---- Finalization: sqrt of the n diagonal entries ------------------
        with span("hw.finalize") as fin_span:
            bd.finalize = n + lat.sqrt
            fin_span.set_attrs(
                modeled_cycles=bd.finalize, modeled_s=arch.seconds(bd.finalize)
            )
        bd.total = bd.gram_phase + bd.sweep_total + bd.finalize
        est_span.set_attrs(
            modeled_cycles=bd.total, modeled_s=bd.seconds
        )
    record_hw_estimate(bd)
    return bd


def estimate_seconds(
    m: int,
    n: int,
    arch: ArchitectureParams = PAPER_ARCH,
    **kwargs,
) -> float:
    """Convenience wrapper: estimated execution time in seconds."""
    return estimate_cycles(m, n, arch, **kwargs).seconds
