"""On-chip memory models: simple dual-port RAM and the BRAM budget.

The architecture keeps three classes of data in block RAM (Section V /
VI-A): the rotation-angle parameters (cos, sin) of in-flight groups,
covariances "whose computations have not been completed with the
current vector pairing", and — for column dimensions up to 256 — the
whole covariance matrix.  ``DualPortRAM`` provides functional storage
with port-conflict accounting; ``BramBudget`` converts logical stores
into 36 Kb block counts against the Virtex-5 capacity.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["DualPortRAM", "BramBudget", "covariance_words", "fits_on_chip"]


def covariance_words(n: int) -> int:
    """Words needed for the upper-triangular covariance matrix (with diag)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return n * (n + 1) // 2


def fits_on_chip(n: int, max_onchip_cols: int = 256) -> bool:
    """Paper's rule: the whole covariance matrix is local iff n <= 256."""
    return n <= max_onchip_cols


class DualPortRAM:
    """Simple dual-port RAM: one read port + one write port per cycle.

    Functional storage is a float64 array.  Reads have a one-cycle
    latency (matching BRAM output registers); the model counts port
    conflicts (two same-cycle accesses to one port), which the
    schedulers must keep at zero.
    """

    READ_LATENCY = 1

    def __init__(self, words: int, name: str = "") -> None:
        if words < 1:
            raise ValueError("words must be >= 1")
        self.words = words
        self.name = name
        self.data = np.zeros(words)
        self.reads = 0
        self.writes = 0
        self.conflicts = 0
        self._last_read_cycle = -1
        self._last_write_cycle = -1

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.words:
            raise IndexError(
                f"RAM {self.name or id(self)}: address {addr} out of range "
                f"[0, {self.words})"
            )

    def read(self, addr: int, cycle: int = 0) -> tuple[float, int]:
        """Read *addr*; returns ``(value, ready_cycle)``."""
        self._check(addr)
        if cycle == self._last_read_cycle:
            self.conflicts += 1
        self._last_read_cycle = cycle
        self.reads += 1
        return float(self.data[addr]), cycle + self.READ_LATENCY

    def write(self, addr: int, value: float, cycle: int = 0) -> None:
        self._check(addr)
        if cycle == self._last_write_cycle:
            self.conflicts += 1
        self._last_write_cycle = cycle
        self.writes += 1
        self.data[addr] = value

    def reset(self) -> None:
        self.data[:] = 0.0
        self.reads = self.writes = self.conflicts = 0
        self._last_read_cycle = self._last_write_cycle = -1


class BramBudget:
    """Accounts 36 Kb block allocations against a device capacity.

    Each allocation is ``(name, words, word_bits)``; blocks are counted
    with ceiling division per allocation (a hardware RAM cannot share a
    block across unrelated memories without extra muxing, which the
    paper's design does not do).
    """

    BLOCK_BITS = 36 * 1024

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        self.capacity_blocks = capacity_blocks
        self.allocations: dict[str, int] = {}

    @classmethod
    def blocks_for(cls, words: int, word_bits: int = 64) -> int:
        """36 Kb blocks needed for *words* entries of *word_bits* each.

        BRAM36 primitives provide at most 36-bit-wide ports; a 64-bit
        word therefore occupies two block "lanes" when the depth exceeds
        512 — modelled here by pure capacity with a width-lane floor.
        """
        if words <= 0:
            return 0
        bits = words * word_bits
        by_capacity = math.ceil(bits / cls.BLOCK_BITS)
        by_width = math.ceil(word_bits / 36)  # minimum lanes for the width
        return max(by_capacity, by_width)

    def allocate(self, name: str, words: int, word_bits: int = 64) -> int:
        """Record an allocation; returns blocks used.  Raises when over."""
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        blocks = self.blocks_for(words, word_bits)
        if self.used_blocks + blocks > self.capacity_blocks:
            raise MemoryError(
                f"BRAM budget exceeded: {self.used_blocks}+{blocks} "
                f"> {self.capacity_blocks} blocks (allocating {name!r})"
            )
        self.allocations[name] = blocks
        return blocks

    def allocate_blocks(self, name: str, blocks: int) -> int:
        """Record a raw block-count allocation (for fixed structures)."""
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if self.used_blocks + blocks > self.capacity_blocks:
            raise MemoryError(
                f"BRAM budget exceeded: {self.used_blocks}+{blocks} "
                f"> {self.capacity_blocks} blocks (allocating {name!r})"
            )
        self.allocations[name] = blocks
        return blocks

    @property
    def used_blocks(self) -> int:
        return sum(self.allocations.values())

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.capacity_blocks

    def report(self) -> dict[str, int]:
        """Allocation table, name -> blocks."""
        return dict(self.allocations)
