"""Structural netlist of the accelerator: instances, ports, connections.

A machine-readable description of Fig. 1's block diagram, generated
*from the same ArchitectureParams* that drive the timing and resource
models — so the three views can never drift apart (tests assert the
netlist's operator counts equal the resource model's inventory).
Export as JSON (tooling) or Graphviz DOT (documentation).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.hw.params import PAPER_ARCH, ArchitectureParams

__all__ = ["Instance", "Connection", "Netlist", "build_netlist"]


@dataclass(frozen=True)
class Instance:
    """One hardware instance (a core, a memory, a FIFO group)."""

    name: str
    kind: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Connection:
    """A directed data connection between two instances."""

    src: str
    dst: str
    label: str = ""


@dataclass
class Netlist:
    """The component graph."""

    instances: list
    connections: list

    def instance(self, name: str) -> Instance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise KeyError(name)

    def count(self, kind: str) -> int:
        return sum(1 for i in self.instances if i.kind == kind)

    def operator_totals(self) -> dict[str, int]:
        """FP core totals by kind — comparable to the resource model."""
        totals: dict[str, int] = {}
        for inst in self.instances:
            if inst.kind == "fp_core":
                op = inst.params["op"]
                totals[op] = totals.get(op, 0) + 1
        return totals

    def to_json(self) -> str:
        return json.dumps(
            {
                "instances": [asdict(i) for i in self.instances],
                "connections": [asdict(c) for c in self.connections],
            },
            indent=2,
        )

    def to_dot(self) -> str:
        """Graphviz DOT of the top-level blocks (FP cores collapsed)."""
        lines = ["digraph accelerator {", "  rankdir=LR;"]
        tops = [i for i in self.instances if i.kind != "fp_core"]
        for inst in tops:
            label = inst.name
            if inst.params:
                detail = ", ".join(f"{k}={v}" for k, v in inst.params.items())
                label = f"{inst.name}\\n{detail}"
            lines.append(f'  "{inst.name}" [shape=box, label="{label}"];')
        top_names = {i.name for i in tops}
        for conn in self.connections:
            if conn.src in top_names and conn.dst in top_names:
                attr = f' [label="{conn.label}"]' if conn.label else ""
                lines.append(f'  "{conn.src}" -> "{conn.dst}"{attr};')
        lines.append("}")
        return "\n".join(lines)


def build_netlist(arch: ArchitectureParams = PAPER_ARCH) -> Netlist:
    """Instantiate the Fig. 1 structure for *arch*."""
    instances: list[Instance] = []
    connections: list[Connection] = []

    def add(name, kind, **params):
        instances.append(Instance(name, kind, dict(params)))
        return name

    def wire(src, dst, label=""):
        connections.append(Connection(src, dst, label))

    offchip = add("offchip_memory", "memory",
                  bandwidth_gbs=arch.platform.offchip_bandwidth_gbs)
    fifo_in = add("input_fifos", "fifo_group",
                  count=arch.input_fifos.count, width=arch.input_fifos.width_bits)
    fifo_out = add("output_fifos", "fifo_group",
                   count=arch.output_fifos.count, width=arch.output_fifos.width_bits)
    fifo_mid = add("internal_fifos", "fifo_group",
                   count=arch.internal_fifos.count,
                   width=arch.internal_fifos.width_bits)
    pre = add("hestenes_preprocessor", "preprocessor",
              layers=arch.preproc_layers, width=arch.preproc_mults_per_layer)
    jac = add("jacobi_rotation_unit", "rotation_unit",
              group=arch.rotation_group, issue_cycles=arch.rotation_issue_cycles)
    upd = add("update_operator", "update_operator", kernels=arch.update_kernels)
    cov = add("covariance_store", "bram", max_cols=arch.max_onchip_cols)
    par = add("param_cache", "bram", contents="cos/sin")

    # FP cores inside the preprocessor: one mul + one accumulating adder
    # per array slot.
    for i in range(arch.preproc_multipliers):
        add(f"pre_mul[{i}]", "fp_core", op="mul", owner=pre)
        add(f"pre_add[{i}]", "fp_core", op="add", owner=pre)
    # Rotation unit: 1 mul, 2 adders, 1 div, 1 sqrt (Section VI-A).
    add("jac_mul", "fp_core", op="mul", owner=jac)
    add("jac_add[0]", "fp_core", op="add", owner=jac)
    add("jac_add[1]", "fp_core", op="add", owner=jac)
    add("jac_div", "fp_core", op="div", owner=jac)
    add("jac_sqrt", "fp_core", op="sqrt", owner=jac)
    # Update kernels: 4 muls + adder + subtractor each (Fig. 5).
    for k in range(arch.update_kernels):
        for i in range(4):
            add(f"upd{k}_mul[{i}]", "fp_core", op="mul", owner=upd)
        add(f"upd{k}_add", "fp_core", op="add", owner=upd)
        add(f"upd{k}_sub", "fp_core", op="add", owner=upd)

    wire(offchip, fifo_in, "matrix stream")
    wire(fifo_in, pre, "A elements")
    wire(pre, cov, "norms + covariances")
    wire(cov, jac, "n1, n2, cov")
    wire(jac, par, "cos, sin, t")
    wire(par, upd, "rotation params")
    wire(pre, fifo_mid, "reconfigured updates")
    wire(fifo_mid, upd, "column stream")
    wire(upd, cov, "updated covariances")
    wire(jac, fifo_out, "singular values")
    wire(fifo_out, offchip, "results")
    return Netlist(instances=instances, connections=connections)
