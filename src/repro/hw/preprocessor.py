"""The Hestenes preprocessor: layered multiplier-arrays computing D = AᵀA.

Functional model of Fig. 2/3: the matrix streams through ``L`` layers
of ``W``-wide multiplier arrays; a band of ``L`` rows is processed per
pass, with each layer's products accumulated down the adder chain into
the partial covariances.  Operand *reuse* is the architectural point:
within a band, each entering element multiplies against the W pivots
already resident, so only one new operand per layer per cycle is
fetched after the initial fill — the paper's "16 cycles for an 8x8
matrix with 8 layers" input schedule.

Numerical fidelity: the band-accumulation order (partial sums added
band by band) is reproduced, so the computed D matches the hardware's
summation order rather than NumPy's pairwise ``a.T @ a`` — the results
differ only in rounding, which the tests bound.

After the first sweep the preprocessor is *reconfigured* into
``reconfig_kernels`` extra update kernels (Section V-C), reusing its 16
multipliers and half of its adders.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hw.kernels import UpdateKernel
from repro.hw.params import PAPER_ARCH, ArchitectureParams

__all__ = ["HestenesPreprocessor"]


class HestenesPreprocessor:
    """Functional + timing model of the preprocessor component."""

    def __init__(self, arch: ArchitectureParams = PAPER_ARCH) -> None:
        self.arch = arch
        self.reconfigured = False
        self.gram_ops = 0
        self.input_words = 0

    # ---- timing -----------------------------------------------------------

    def input_cycles(self, m: int, n: int) -> int:
        """Input-schedule cost (Fig. 3): one band of ``layers`` rows per
        pass, each pass needing (n + layers) cycles of operand entry."""
        passes = math.ceil(m / self.arch.preproc_layers)
        return passes * (n + self.arch.preproc_layers)

    def compute_cycles(self, m: int, n: int) -> int:
        """Multiply-throughput cost: all m*n(n+1)/2 products at
        ``preproc_multipliers`` per cycle."""
        return math.ceil(m * n * (n + 1) / 2 / self.arch.preproc_multipliers)

    def gram_cycles(self, m: int, n: int) -> int:
        """Total phase cycles: the slower of input and compute engines,
        plus the multiply->adder-chain pipeline fill."""
        lat = self.arch.latencies
        fill = lat.mul + self.arch.preproc_layers * lat.add
        return max(self.input_cycles(m, n), self.compute_cycles(m, n)) + fill

    # ---- function ---------------------------------------------------------

    def compute_gram(self, a: np.ndarray, start_cycle: int = 0):
        """Compute the covariance matrix with hardware accumulation order.

        Returns ``(d, done_cycle)``.  Raises if the preprocessor has
        already been reconfigured into update kernels.
        """
        if self.reconfigured:
            raise RuntimeError(
                "preprocessor was reconfigured into update kernels; "
                "it can no longer compute Gram matrices"
            )
        a = np.asarray(a, dtype=np.float64)
        m, n = a.shape
        layers = self.arch.preproc_layers
        d = np.zeros((n, n))
        # Band accumulation: partial covariances of each L-row band are
        # produced by the adder chain, then accumulated band by band by
        # the auxiliary adders ("vectors with lengths over 8").
        for r0 in range(0, m, layers):
            band = a[r0 : r0 + layers, :]
            d += band.T @ band
        self.gram_ops += m * n * (n + 1) // 2
        self.input_words += m * n
        return d, start_cycle + self.gram_cycles(m, n)

    # ---- reconfiguration ----------------------------------------------------

    def reconfigure(self) -> list[UpdateKernel]:
        """Repurpose the multiplier arrays as update kernels (Section V-C).

        Returns the extra kernels (4 in the paper's build: 16 multipliers
        and 8 adders re-wired into 4 x (4 mul + 2 add)).  Idempotent
        calls raise — hardware cannot reconfigure twice.
        """
        if self.reconfigured:
            raise RuntimeError("preprocessor already reconfigured")
        self.reconfigured = True
        return [
            UpdateKernel(self.arch.latencies, name=f"preproc-as-update[{i}]")
            for i in range(self.arch.reconfig_kernels)
        ]

    def reset(self) -> None:
        self.reconfigured = False
        self.gram_ops = 0
        self.input_words = 0
