"""Result container shared by every SVD implementation in the library."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.convergence import ConvergenceTrace
from repro.util.numerics import reconstruction_error

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a hard dep
    from repro.obs.health import HealthReport

__all__ = ["SVDResult"]


@dataclass
class SVDResult:
    """Outcome of a singular value decomposition.

    Attributes
    ----------
    s : numpy.ndarray
        Singular values, descending, length ``k = min(m, n)``.
    u : numpy.ndarray or None
        Left singular vectors, shape (m, k); ``None`` when the caller
        requested singular values only (the hardware-faithful mode, like
        the paper's FPGA which outputs ``Sig`` from the diagonal of D).
    vt : numpy.ndarray or None
        Right singular vectors transposed, shape (k, n), or ``None``.
    sweeps : int
        Number of Jacobi sweeps executed (0 for non-Jacobi baselines).
    trace : ConvergenceTrace or None
        Per-sweep convergence record, when the algorithm produces one.
    method : str
        Implementation identifier ("reference", "modified", "blocked",
        "golub_reinsch", "two_sided_jacobi", "fpga", ...).
    converged : bool
        Whether an early-stopping criterion was met (always True for
        direct baselines).
    health : HealthReport or None
        Numerical-health summary attached by
        :func:`repro.obs.health.observe_result` when monitoring is on
        (the default for :func:`repro.core.svd.hestenes_svd` runs).
    precision : str
        Working-precision schedule the run used ("fp64" for every
        engine except :func:`repro.core.vectorized.vectorized_svd`
        running with its ``precision`` engine_opt set to "mixed" or
        "fp32").
    fp32_sweeps : int
        Sweeps executed in the float32 phase (0 on pure-fp64 runs, and
        on mixed runs that took the zero-fp32-round early exit because
        the input was already below the switch threshold).
    """

    s: np.ndarray
    u: np.ndarray | None = None
    vt: np.ndarray | None = None
    sweeps: int = 0
    trace: ConvergenceTrace | None = None
    method: str = ""
    converged: bool = True
    health: "HealthReport | None" = None
    precision: str = "fp64"
    fp32_sweeps: int = 0

    @property
    def rank(self) -> int:
        """Numerical rank: count of singular values above ``s_max * n * eps``."""
        if len(self.s) == 0:
            return 0
        cutoff = self.s[0] * max(len(self.s), 1) * np.finfo(np.float64).eps
        return int(np.sum(self.s > cutoff))

    def reconstruct(self, rank: int | None = None) -> np.ndarray:
        """Rebuild ``A`` (or its best rank-``rank`` approximation).

        Requires both factor matrices; raises ``ValueError`` otherwise.
        """
        if self.u is None or self.vt is None:
            raise ValueError(
                "reconstruct() needs u and vt; run with compute_uv=True"
            )
        k = len(self.s) if rank is None else min(rank, len(self.s))
        return (self.u[:, :k] * self.s[:k]) @ self.vt[:k, :]

    def reconstruction_error(self, a: np.ndarray) -> float:
        """Relative Frobenius error of the full reconstruction against *a*."""
        if self.u is None or self.vt is None:
            raise ValueError(
                "reconstruction_error() needs u and vt; run with compute_uv=True"
            )
        return reconstruction_error(a, self.u, self.s, self.vt)
