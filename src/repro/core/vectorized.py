"""Round-parallel vectorized Hestenes-Jacobi SVD in column space.

The Brent-Luk cyclic ordering (Fig. 6) makes every round's n/2 pairs
index-disjoint — which is exactly why the paper's FPGA can issue eight
independent rotations every 64 cycles.  This engine exploits the same
property in NumPy: for each round it gathers *all* disjoint (i, j)
column pairs at once, computes every rotation parameter in one batched
pass over vectors of norms and covariances (either Algorithm 1's
textbook formulas or the division-restructured hardware equations 8-10),
and applies the whole round with a single gather/scatter column update.

It is the round-parallel counterpart of
:func:`repro.core.hestenes.reference_svd` — same recompute-from-columns
numerics (never squaring the condition number, unlike the cached-Gram
``modified``/``blocked`` engines), same convergence-trace schema, and
rotation parameters that agree with the sequential loop to the rounding
of the batched dot products (bit-identical whenever the per-pair norms
and covariances are, since :func:`repro.core.blocked.batch_rotation_params`
evaluates the scalar formulas elementwise and the batched column update
performs the identical arithmetic).  ``tests/core/test_differential.py``
pins this round-for-round.

A ``block_rounds`` knob additionally fuses consecutive rounds through
:func:`repro.core.ordering.fuse_rounds` when no pair conflicts — a
no-op for the dense cyclic ordering, but it batches the one-pair-per-
round sequential orderings ("row", "random") back up to hardware-style
groups.

Mixed-precision fast path
-------------------------
The ``precision`` knob selects the working-precision schedule:
``"fp64"`` (the default double-precision path above, untouched),
``"mixed"`` (cheap float32 bulk sweeps, then a re-derived fp64 handoff
and double-precision finishing sweeps — same final accuracy class as
fp64), and ``"fp32"`` (float32 throughout, the documented ~1e-5
class).  The reduced-precision kernel — the fused ``[Bᵀ | Vᵀ]`` store,
the fp32 phase, the Newton-Schulz handoff, and the fp64 finish — lives
in :mod:`repro.core.fused`; ``tests/core/test_differential.py``
enforces the per-tier tolerance schedule.  Finalization is always
fp64.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocked import batch_rotation_params
from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.fused import (
    compile_fused_plan,
    fp32_phase,
    fused_fp64_finish,
    polar_orthonormalize,
)
from repro.core.hestenes import FlopCounter, finalize_columns
from repro.core.ordering import fuse_rounds, make_sweep
from repro.core.result import SVDResult
from repro.obs import noop_span, round_detail, span
from repro.obs.health import sweep_guard
from repro.util.validation import (
    as_float_matrix,
    check_in_choices,
    check_positive_float,
    check_positive_int,
)

__all__ = [
    "vectorized_svd",
    "pair_dots",
    "round_plan",
    "PRECISIONS",
    "DEFAULT_SWITCH_TOL",
]

#: Working-precision schedules accepted by :func:`vectorized_svd`.
PRECISIONS = ("fp64", "mixed", "fp32")

#: Default ``switch_tol``: the scale-free off-diagonal estimate at
#: which the mixed schedule hands over to fp64 finishing sweeps.  1e-5
#: sits comfortably above the fp32 noise floor while leaving the fp64
#: phase only ~2 full sweeps of quadratic-convergence work.
DEFAULT_SWITCH_TOL = 1e-5

#: Sweeps of the ``criterion.max_sweeps`` budget reserved for the fp64
#: finishing phase of the mixed schedule; the fp32 phase may consume
#: the rest.  Three sweeps take a ~1e-2 handoff to the fp64 floor under
#: quadratic convergence, so even a tight total budget (the classic
#: max_sweeps=6) leaves the cleanup enough room.
_RESERVED_FP64_SWEEPS = 3


def pair_dots(
    b: np.ndarray, idx_i: np.ndarray, idx_j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched squared norms and covariances for disjoint column pairs.

    Returns ``(norm_i, norm_j, cov)`` where entry k carries the three
    length-m dot products of columns ``idx_i[k]`` and ``idx_j[k]`` —
    the same quantities the scalar loop recomputes pair by pair, here
    produced by three einsum reductions over the gathered columns.
    """
    cols_i = b[:, idx_i]
    cols_j = b[:, idx_j]
    norm_i = np.einsum("ij,ij->j", cols_i, cols_i)
    norm_j = np.einsum("ij,ij->j", cols_j, cols_j)
    cov = np.einsum("ij,ij->j", cols_i, cols_j)
    return norm_i, norm_j, cov


def _row_dots(
    bt: np.ndarray, idx_i: np.ndarray, idx_j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`pair_dots` on the transposed column store.

    The engine keeps ``Bᵀ`` so each column of B is a *contiguous row* —
    gathers, reductions, and scattered writebacks then run on unit
    stride, which measures ~2x faster than the column-slice forms on
    C-ordered arrays.
    """
    rows_i = bt[idx_i]
    rows_j = bt[idx_j]
    norm_i = np.einsum("ij,ij->i", rows_i, rows_i)
    norm_j = np.einsum("ij,ij->i", rows_j, rows_j)
    cov = np.einsum("ij,ij->i", rows_i, rows_j)
    return norm_i, norm_j, cov


def _apply_round_rows(
    bt: np.ndarray,
    idx_i: np.ndarray,
    idx_j: np.ndarray,
    c: np.ndarray,
    s: np.ndarray,
) -> None:
    """Row-store form of :func:`repro.core.rotation.apply_round_columns`.

    Elementwise arithmetic is identical (``b_i c - b_j s`` / ``b_i s +
    b_j c`` per element), so results are bit-identical to the
    column-store update and to the sequential pair-at-a-time loop.
    """
    c = c[:, None]
    s = s[:, None]
    rows_i = bt[idx_i].copy()
    rows_j = bt[idx_j]
    bt[idx_i] = rows_i * c - rows_j * s
    bt[idx_j] = rows_i * s + rows_j * c


def round_plan(
    n: int,
    ordering: str = "cyclic",
    seed=None,
    block_rounds: int = 1,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Precompiled sweep schedule: one ``(idx_i, idx_j)`` pair of index
    arrays per (possibly fused) round.

    Converting the pair lists to integer arrays once per sweep moves the
    remaining Python-level work out of the rotation hot path.
    """
    rounds = fuse_rounds(make_sweep(n, ordering, seed), block_rounds)
    plan = []
    for round_pairs in rounds:
        if not round_pairs:
            continue
        k = len(round_pairs)
        idx_i = np.fromiter((p[0] for p in round_pairs), dtype=np.intp, count=k)
        idx_j = np.fromiter((p[1] for p in round_pairs), dtype=np.intp, count=k)
        plan.append((idx_i, idx_j))
    return plan


def _fused_plan_maker(n, ordering, seed, block_rounds):
    """Zero-argument plan builder for the fused sweep loops
    (:mod:`repro.core.fused`): static orderings compile once and return
    the same plan every sweep; "random" recompiles per call."""
    if ordering == "random":
        return lambda: compile_fused_plan(
            round_plan(n, ordering, seed, block_rounds)
        )
    plan = compile_fused_plan(round_plan(n, ordering, seed, block_rounds))
    return lambda: plan


def _fp64_sweep_loop(
    bt: np.ndarray,
    vt: np.ndarray | None,
    *,
    criterion: ConvergenceCriterion,
    ordering: str,
    seed,
    block_rounds: int,
    pair_threshold: float,
    rotation_impl: str,
    trace: ConvergenceTrace,
    flops: FlopCounter | None,
    start_sweep: int = 0,
) -> tuple[int, bool]:
    """The double-precision sweep loop over the transposed stores.

    This is the engine's reference-precision round path; the fp64 and
    mixed schedules both run it (the latter with ``start_sweep`` set to
    the fp32 sweep count so trace numbering stays contiguous).  Returns
    ``(sweeps_done, converged)`` with ``sweeps_done`` absolute.
    """
    n, m = bt.shape
    static_plan = (
        None
        if ordering == "random"
        else round_plan(n, ordering, seed, block_rounds)
    )
    converged = False
    sweeps_done = start_sweep
    rspan = span if round_detail() else noop_span
    for sweep in range(start_sweep + 1, criterion.max_sweeps + 1):
        plan = (
            static_plan
            if static_plan is not None
            else round_plan(n, ordering, seed, block_rounds)
        )
        with span("core.sweep", method="vectorized", sweep=sweep) as sweep_span:
            rotations = 0
            skipped = 0
            for round_index, (idx_i, idx_j) in enumerate(plan):
                with rspan("core.round", round=round_index, pairs=len(idx_i)):
                    norm_i, norm_j, cov = _row_dots(bt, idx_i, idx_j)
                    if flops is not None:
                        flops.add_pairs(m, len(idx_i))
                    # sqrt per factor: the product norm_i*norm_j overflows
                    # for squared norms above 1e154 (columns of scale ~1e77).
                    active = np.abs(cov) > pair_threshold * np.sqrt(
                        norm_i
                    ) * np.sqrt(norm_j)
                    n_active = int(np.count_nonzero(active))
                    skipped += len(idx_i) - n_active
                    if n_active == 0:
                        continue
                    rotations += n_active
                    if n_active < len(idx_i):
                        idx_i, idx_j = idx_i[active], idx_j[active]
                        norm_i, norm_j = norm_i[active], norm_j[active]
                        cov = cov[active]
                    c, s, _, _ = batch_rotation_params(
                        norm_i, norm_j, cov, rotation_impl=rotation_impl
                    )
                    _apply_round_rows(bt, idx_i, idx_j, c, s)
                    if vt is not None:
                        _apply_round_rows(vt, idx_i, idx_j, c, s)
                    if flops is not None:
                        flops.add_updates(m, n_active)
            sweeps_done = sweep
            value = measure(bt @ bt.T, criterion.metric)
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("vectorized", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    return sweeps_done, converged


def vectorized_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    ordering: str = "cyclic",
    seed=None,
    pair_threshold: float = 1e-15,
    rotation_impl: str = "textbook",
    block_rounds: int = 1,
    precision: str = "fp64",
    switch_tol: float | None = None,
    flops: FlopCounter | None = None,
) -> SVDResult:
    """Round-parallel one-sided Jacobi SVD with batched rotations.

    Parameters
    ----------
    a : array_like
        Input m x n matrix (any rectangular shape).
    compute_uv : bool
        When True, return U and Vᵀ in addition to the singular values.
    criterion : ConvergenceCriterion
        Sweep cap and optional early-stopping threshold.  Default:
        ``ConvergenceCriterion(max_sweeps=30, tol=None)`` — the same
        generous cap as the sequential reference engine; the loop also
        stops when a full sweep performs no rotation.
    ordering : str
        Pair ordering per sweep (:data:`repro.core.ordering.ORDERINGS`).
        The cyclic ordering exposes n/2-wide rounds; "row" and "random"
        start one pair per round and rely on *block_rounds* for width.
    seed
        Only used by the "random" ordering.
    pair_threshold : float
        de Rijk relative skip threshold, as in
        :func:`repro.core.hestenes.reference_svd`: the pair rotates only
        when ``|cov| > pair_threshold * sqrt(norm_i) * sqrt(norm_j)``.
        The fp32 phase clamps this from below at float32 eps, where
        smaller covariances are indistinguishable from rounding noise.
    rotation_impl : {"textbook", "dataflow"}
        Batched rotation-parameter formulation — Algorithm 1 lines 11-14
        or the FPGA's division-restructured equations (8)-(10).  The
        textbook form matches the reference engine's parameters exactly
        for identical norm/covariance inputs.
    block_rounds : int
        Fuse up to this many consecutive conflict-free rounds into one
        batched update (:func:`repro.core.ordering.fuse_rounds`).  Exact
        for any value: fused pairs are index-disjoint, so their
        rotations neither observe nor perturb each other.
    precision : {"fp64", "mixed", "fp32"}
        Working-precision schedule (see the module docstring).  "mixed"
        runs cheap float32 bulk sweeps, then re-orthonormalizes V,
        recomputes ``B = A @ V`` in fp64 and finishes on the standard
        double-precision path — same final accuracy class as "fp64".
        "fp32" stays in float32 throughout (documented ~1e-5 class).
        Finalization is always fp64.
    switch_tol : float, optional
        Mixed-precision handoff threshold on the scale-free off-diagonal
        estimate ``off_fro(BᵀB)/‖BᵀB‖_F``; defaults to
        :data:`DEFAULT_SWITCH_TOL`.  Any positive value converges to the
        fp64 class — the threshold trades fp32 vs fp64 sweep counts, not
        final accuracy (the fp32 phase additionally self-limits at its
        noise floor and the fp64 phase always retains
        budget).  Ignored for "fp64" and "fp32".
    flops : FlopCounter, optional
        Tallies dot-product and update work; totals match the scalar
        reference loop for an identical sweep schedule.  (The fp32
        phase's cached-norm rounds are charged at the same per-pair
        rate even though they skip two of the three reductions.)

    Returns
    -------
    SVDResult
        Economy-size decomposition, singular values descending, with
        ``method="vectorized"``, the standard per-sweep trace, and the
        precision schedule recorded as ``precision``/``fp32_sweeps``.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    criterion = criterion or ConvergenceCriterion(max_sweeps=30, tol=None)
    check_positive_int(block_rounds, name="block_rounds")
    check_in_choices(precision, PRECISIONS, name="precision")
    if switch_tol is None:
        switch_tol = DEFAULT_SWITCH_TOL
    else:
        check_positive_float(switch_tol, name="switch_tol")

    # Transposed stores: columns of B (and of V) live as contiguous
    # rows, so the round-wide gather/reduce/scatter runs at unit stride.
    # (.copy() rather than ascontiguousarray: the latter can return a
    # view for degenerate shapes, and the input must never be mutated.)
    bt = a.T.copy()
    vt = np.eye(n) if compute_uv else None
    trace = ConvergenceTrace(metric=criterion.metric)
    g0 = bt @ bt.T
    trace.record(0, measure(g0, criterion.metric))

    fp32_sweeps = 0
    low_converged = False
    if precision != "fp64":
        est0 = float(measure(g0, "relative"))
        run_low = precision == "fp32" or est0 > switch_tol
        if run_low:
            budget = (
                criterion.max_sweeps
                if precision == "fp32"
                else max(1, criterion.max_sweeps - _RESERVED_FP64_SWEEPS)
            )
            w, fp32_sweeps, low_converged = fp32_phase(
                a,
                criterion=criterion,
                make_plan=_fused_plan_maker(n, ordering, seed, block_rounds),
                pair_threshold=pair_threshold,
                rotation_impl=rotation_impl,
                switch_tol=switch_tol if precision == "mixed" else None,
                budget=budget,
                initial_estimate=est0,
                trace=trace,
                flops=flops,
            )
        if precision == "fp32":
            # Cheap tier: upcast the finished fp32 factors as-is.
            trace.converged = low_converged
            b = np.ascontiguousarray(w[:, :m].T, dtype=np.float64)
            v = (
                np.ascontiguousarray(w[:, m:].T, dtype=np.float64)
                if compute_uv
                else None
            )
            s_vals, u, out_vt = finalize_columns(b, v, compute_uv=compute_uv)
            return SVDResult(
                s=s_vals,
                u=u,
                vt=out_vt,
                sweeps=fp32_sweeps,
                trace=trace,
                method="vectorized",
                converged=low_converged,
                precision=precision,
                fp32_sweeps=fp32_sweeps,
            )
        if fp32_sweeps:
            # Mixed handoff: re-derive the fp64 state rather than
            # upcasting it.  V's fp32 orthogonality defect is polished
            # away by the polar iteration, then B is recomputed from
            # the *original* fp64 input so no fp32 rounding survives
            # into the finishing sweeps.
            with span(
                "core.precision_switch",
                method="vectorized",
                fp32_sweeps=fp32_sweeps,
            ):
                v = np.ascontiguousarray(w[:, m:].T, dtype=np.float64)
                v = polar_orthonormalize(v)
                width = m + n if compute_uv else m
                w64 = np.empty((n, width), dtype=np.float64)
                w64[:, :m] = (a @ v).T
                if compute_uv:
                    w64[:, m:] = v.T
            sweeps_done, converged = fused_fp64_finish(
                w64,
                m,
                criterion=criterion,
                make_plan=_fused_plan_maker(n, ordering, seed, block_rounds),
                pair_threshold=pair_threshold,
                rotation_impl=rotation_impl,
                trace=trace,
                flops=flops,
                start_sweep=fp32_sweeps,
            )
            trace.converged = converged
            b = np.ascontiguousarray(w64[:, :m].T)
            v_fin = (
                np.ascontiguousarray(w64[:, m:].T) if compute_uv else None
            )
            s_vals, u, out_vt = finalize_columns(
                b, v_fin, compute_uv=compute_uv
            )
            return SVDResult(
                s=s_vals,
                u=u,
                vt=out_vt,
                sweeps=sweeps_done,
                trace=trace,
                method="vectorized",
                converged=converged,
                precision=precision,
                fp32_sweeps=fp32_sweeps,
            )
        # else: the input was already below switch_tol (e.g. diagonal)
        # — the zero-fp32-round early exit runs the pure fp64 path on
        # the untouched stores.

    sweeps_done, converged = _fp64_sweep_loop(
        bt,
        vt,
        criterion=criterion,
        ordering=ordering,
        seed=seed,
        block_rounds=block_rounds,
        pair_threshold=pair_threshold,
        rotation_impl=rotation_impl,
        trace=trace,
        flops=flops,
        start_sweep=fp32_sweeps,
    )
    trace.converged = converged

    b = np.ascontiguousarray(bt.T)
    v = None if vt is None else vt.T
    s_vals, u, out_vt = finalize_columns(b, v, compute_uv=compute_uv)
    return SVDResult(
        s=s_vals,
        u=u,
        vt=out_vt,
        sweeps=sweeps_done,
        trace=trace,
        method="vectorized",
        converged=converged,
        precision=precision,
        fp32_sweeps=fp32_sweeps,
    )
