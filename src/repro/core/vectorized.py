"""Round-parallel vectorized Hestenes-Jacobi SVD in column space.

The Brent-Luk cyclic ordering (Fig. 6) makes every round's n/2 pairs
index-disjoint — which is exactly why the paper's FPGA can issue eight
independent rotations every 64 cycles.  This engine exploits the same
property in NumPy: for each round it gathers *all* disjoint (i, j)
column pairs at once, computes every rotation parameter in one batched
pass over vectors of norms and covariances (either Algorithm 1's
textbook formulas or the division-restructured hardware equations 8-10),
and applies the whole round with a single gather/scatter column update.

It is the round-parallel counterpart of
:func:`repro.core.hestenes.reference_svd` — same recompute-from-columns
numerics (never squaring the condition number, unlike the cached-Gram
``modified``/``blocked`` engines), same convergence-trace schema, and
rotation parameters that agree with the sequential loop to the rounding
of the batched dot products (bit-identical whenever the per-pair norms
and covariances are, since :func:`repro.core.blocked.batch_rotation_params`
evaluates the scalar formulas elementwise and the batched column update
performs the identical arithmetic).  ``tests/core/test_differential.py``
pins this round-for-round.

A ``block_rounds`` knob additionally fuses consecutive rounds through
:func:`repro.core.ordering.fuse_rounds` when no pair conflicts — a
no-op for the dense cyclic ordering, but it batches the one-pair-per-
round sequential orderings ("row", "random") back up to hardware-style
groups.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocked import batch_rotation_params
from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.hestenes import FlopCounter, finalize_columns
from repro.core.ordering import fuse_rounds, make_sweep
from repro.core.result import SVDResult
from repro.obs import noop_span, round_detail, span
from repro.obs.health import sweep_guard
from repro.util.validation import as_float_matrix, check_positive_int

__all__ = ["vectorized_svd", "pair_dots", "round_plan"]


def pair_dots(
    b: np.ndarray, idx_i: np.ndarray, idx_j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched squared norms and covariances for disjoint column pairs.

    Returns ``(norm_i, norm_j, cov)`` where entry k carries the three
    length-m dot products of columns ``idx_i[k]`` and ``idx_j[k]`` —
    the same quantities the scalar loop recomputes pair by pair, here
    produced by three einsum reductions over the gathered columns.
    """
    cols_i = b[:, idx_i]
    cols_j = b[:, idx_j]
    norm_i = np.einsum("ij,ij->j", cols_i, cols_i)
    norm_j = np.einsum("ij,ij->j", cols_j, cols_j)
    cov = np.einsum("ij,ij->j", cols_i, cols_j)
    return norm_i, norm_j, cov


def _row_dots(
    bt: np.ndarray, idx_i: np.ndarray, idx_j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`pair_dots` on the transposed column store.

    The engine keeps ``Bᵀ`` so each column of B is a *contiguous row* —
    gathers, reductions, and scattered writebacks then run on unit
    stride, which measures ~2x faster than the column-slice forms on
    C-ordered arrays.
    """
    rows_i = bt[idx_i]
    rows_j = bt[idx_j]
    norm_i = np.einsum("ij,ij->i", rows_i, rows_i)
    norm_j = np.einsum("ij,ij->i", rows_j, rows_j)
    cov = np.einsum("ij,ij->i", rows_i, rows_j)
    return norm_i, norm_j, cov


def _apply_round_rows(
    bt: np.ndarray,
    idx_i: np.ndarray,
    idx_j: np.ndarray,
    c: np.ndarray,
    s: np.ndarray,
) -> None:
    """Row-store form of :func:`repro.core.rotation.apply_round_columns`.

    Elementwise arithmetic is identical (``b_i c - b_j s`` / ``b_i s +
    b_j c`` per element), so results are bit-identical to the
    column-store update and to the sequential pair-at-a-time loop.
    """
    c = c[:, None]
    s = s[:, None]
    rows_i = bt[idx_i].copy()
    rows_j = bt[idx_j]
    bt[idx_i] = rows_i * c - rows_j * s
    bt[idx_j] = rows_i * s + rows_j * c


def round_plan(
    n: int,
    ordering: str = "cyclic",
    seed=None,
    block_rounds: int = 1,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Precompiled sweep schedule: one ``(idx_i, idx_j)`` pair of index
    arrays per (possibly fused) round.

    Converting the pair lists to integer arrays once per sweep moves the
    remaining Python-level work out of the rotation hot path.
    """
    rounds = fuse_rounds(make_sweep(n, ordering, seed), block_rounds)
    plan = []
    for round_pairs in rounds:
        if not round_pairs:
            continue
        k = len(round_pairs)
        idx_i = np.fromiter((p[0] for p in round_pairs), dtype=np.intp, count=k)
        idx_j = np.fromiter((p[1] for p in round_pairs), dtype=np.intp, count=k)
        plan.append((idx_i, idx_j))
    return plan


def vectorized_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    ordering: str = "cyclic",
    seed=None,
    pair_threshold: float = 1e-15,
    rotation_impl: str = "textbook",
    block_rounds: int = 1,
    flops: FlopCounter | None = None,
) -> SVDResult:
    """Round-parallel one-sided Jacobi SVD with batched rotations.

    Parameters
    ----------
    a : array_like
        Input m x n matrix (any rectangular shape).
    compute_uv : bool
        When True, return U and Vᵀ in addition to the singular values.
    criterion : ConvergenceCriterion
        Sweep cap and optional early-stopping threshold.  Default:
        ``ConvergenceCriterion(max_sweeps=30, tol=None)`` — the same
        generous cap as the sequential reference engine; the loop also
        stops when a full sweep performs no rotation.
    ordering : str
        Pair ordering per sweep (:data:`repro.core.ordering.ORDERINGS`).
        The cyclic ordering exposes n/2-wide rounds; "row" and "random"
        start one pair per round and rely on *block_rounds* for width.
    seed
        Only used by the "random" ordering.
    pair_threshold : float
        de Rijk relative skip threshold, as in
        :func:`repro.core.hestenes.reference_svd`: the pair rotates only
        when ``|cov| > pair_threshold * sqrt(norm_i) * sqrt(norm_j)``.
    rotation_impl : {"textbook", "dataflow"}
        Batched rotation-parameter formulation — Algorithm 1 lines 11-14
        or the FPGA's division-restructured equations (8)-(10).  The
        textbook form matches the reference engine's parameters exactly
        for identical norm/covariance inputs.
    block_rounds : int
        Fuse up to this many consecutive conflict-free rounds into one
        batched update (:func:`repro.core.ordering.fuse_rounds`).  Exact
        for any value: fused pairs are index-disjoint, so their
        rotations neither observe nor perturb each other.
    flops : FlopCounter, optional
        Tallies dot-product and update work; totals match the scalar
        reference loop for an identical sweep schedule.

    Returns
    -------
    SVDResult
        Economy-size decomposition, singular values descending, with
        ``method="vectorized"`` and the standard per-sweep trace.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    criterion = criterion or ConvergenceCriterion(max_sweeps=30, tol=None)
    check_positive_int(block_rounds, name="block_rounds")

    # Transposed stores: columns of B (and of V) live as contiguous
    # rows, so the round-wide gather/reduce/scatter runs at unit stride.
    # (.copy() rather than ascontiguousarray: the latter can return a
    # view for degenerate shapes, and the input must never be mutated.)
    bt = a.T.copy()
    vt = np.eye(n) if compute_uv else None
    trace = ConvergenceTrace(metric=criterion.metric)
    trace.record(0, measure(bt @ bt.T, criterion.metric))

    # The cyclic and row schedules are deterministic — compile them
    # once.  The random ordering redraws per sweep, exactly like the
    # sequential engines calling make_sweep inside the sweep loop.
    static_plan = (
        None
        if ordering == "random"
        else round_plan(n, ordering, seed, block_rounds)
    )

    converged = False
    sweeps_done = 0
    rspan = span if round_detail() else noop_span
    for sweep in range(1, criterion.max_sweeps + 1):
        plan = (
            static_plan
            if static_plan is not None
            else round_plan(n, ordering, seed, block_rounds)
        )
        with span("core.sweep", method="vectorized", sweep=sweep) as sweep_span:
            rotations = 0
            skipped = 0
            for round_index, (idx_i, idx_j) in enumerate(plan):
                with rspan("core.round", round=round_index, pairs=len(idx_i)):
                    norm_i, norm_j, cov = _row_dots(bt, idx_i, idx_j)
                    if flops is not None:
                        flops.add_pairs(m, len(idx_i))
                    # sqrt per factor: the product norm_i*norm_j overflows
                    # for squared norms above 1e154 (columns of scale ~1e77).
                    active = np.abs(cov) > pair_threshold * np.sqrt(
                        norm_i
                    ) * np.sqrt(norm_j)
                    n_active = int(np.count_nonzero(active))
                    skipped += len(idx_i) - n_active
                    if n_active == 0:
                        continue
                    rotations += n_active
                    if n_active < len(idx_i):
                        idx_i, idx_j = idx_i[active], idx_j[active]
                        norm_i, norm_j = norm_i[active], norm_j[active]
                        cov = cov[active]
                    c, s, _, _ = batch_rotation_params(
                        norm_i, norm_j, cov, rotation_impl=rotation_impl
                    )
                    _apply_round_rows(bt, idx_i, idx_j, c, s)
                    if vt is not None:
                        _apply_round_rows(vt, idx_i, idx_j, c, s)
                    if flops is not None:
                        flops.add_updates(m, n_active)
            sweeps_done = sweep
            value = measure(bt @ bt.T, criterion.metric)
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("vectorized", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    trace.converged = converged

    b = np.ascontiguousarray(bt.T)
    v = None if vt is None else vt.T
    s_vals, u, out_vt = finalize_columns(b, v, compute_uv=compute_uv)
    return SVDResult(
        s=s_vals,
        u=u,
        vt=out_vt,
        sweeps=sweeps_done,
        trace=trace,
        method="vectorized",
        converged=converged,
    )
