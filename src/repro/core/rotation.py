"""Jacobi plane-rotation parameter computation and application.

Two mathematically equivalent formulations are implemented:

* :func:`textbook_rotation` — Algorithm 1, lines 11-14 of the paper
  (the classical one-sided Jacobi formulas with the stable small root
  of the annihilation quadratic).  Note the paper's line 11 carries a
  sign typo (see DESIGN.md §4): with ``norm1 = D_jj`` and
  ``norm2 = D_ii`` the annihilating choice is
  ``rho = (norm1 - norm2) / (2 cov)``, i.e. *(second column norm minus
  first column norm)*, matching Demmel & Veselić's one-sided Jacobi.
* :func:`dataflow_rotation` — the division-restructured equations
  (8)-(10) used by the FPGA's Jacobi rotation component, which compute
  ``|t|``, ``cos`` and ``|sin|`` from radicals only and carry the sign
  separately (so the datapath needs a single divider and no arctan).

Both produce a rotation ``J = [[cos, sin], [-sin, cos]]`` applied on the
right of the column pair ``(A_i, A_j)``:

    ``A_i' = A_i cos - A_j sin``     (eq. 11)
    ``A_j' = A_i sin + A_j cos``     (eq. 12)

such that ``A_i'ᵀ A_j' = 0`` exactly (in real arithmetic) and the
squared norms move by ``±t*cov`` (Algorithm 1, lines 15-16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.util.numerics import sign

__all__ = [
    "RotationParams",
    "textbook_rotation",
    "dataflow_rotation",
    "two_sided_angles",
    "apply_rotation_columns",
    "apply_round_columns",
    "apply_rotation_gram",
    "rotated_norms",
    "new_covariance",
]


@dataclass(frozen=True)
class RotationParams:
    """Parameters of a single Jacobi plane rotation.

    Attributes
    ----------
    cos, sin : float
        Rotation matrix entries; ``cos >= 0`` and ``cos^2 + sin^2 = 1``.
    t : float
        Signed tangent ``sin / cos``; satisfies ``|t| <= 1`` (inner
        rotation), so the rotation angle is at most 45 degrees.
    identity : bool
        True when the pair was already orthogonal (``cov == 0`` or below
        threshold) and no rotation is required.
    """

    cos: float
    sin: float
    t: float
    identity: bool = False

    IDENTITY: ClassVar["RotationParams"]

    def as_matrix(self) -> np.ndarray:
        """Return the 2x2 rotation ``[[cos, sin], [-sin, cos]]``."""
        return np.array(
            [[self.cos, self.sin], [-self.sin, self.cos]], dtype=np.float64
        )


# Sentinel for "no rotation needed"; cos=1, sin=0.
RotationParams.IDENTITY = RotationParams(cos=1.0, sin=0.0, t=0.0, identity=True)


def textbook_rotation(
    norm_i: float, norm_j: float, cov: float, *, eps: float = 0.0
) -> RotationParams:
    """Rotation parameters per Algorithm 1 (corrected sign), lines 11-14.

    Parameters
    ----------
    norm_i : float
        Squared 2-norm of the first (lower-index) column, ``D_ii``.
    norm_j : float
        Squared 2-norm of the second column, ``D_jj``.
    cov : float
        Covariance ``D_ij`` between the two columns.
    eps : float
        Annihilation threshold: when ``|cov| <= eps`` the identity
        rotation is returned.  ``0.0`` means rotate unless exactly zero.

    Returns
    -------
    RotationParams
        With ``t`` chosen as the smaller-magnitude root of
        ``t^2 + 2*rho*t - 1 = 0``, ``rho = (norm_j - norm_i)/(2 cov)``,
        which guarantees ``|t| <= 1`` and optimal numerical stability.
    """
    # Cast to Python floats: NumPy scalars would emit RuntimeWarnings on
    # the (benign, guarded) overflow path below.
    norm_i, norm_j, cov = float(norm_i), float(norm_j), float(cov)
    if abs(cov) <= eps:
        return RotationParams.IDENTITY
    rho = (norm_j - norm_i) / (2.0 * cov)
    if abs(rho) > 1e150:
        # rho*rho would overflow; asymptotically t -> 1/(2 rho).
        t = 0.5 / rho
    else:
        t = sign(rho) / (abs(rho) + math.sqrt(1.0 + rho * rho))
    c = 1.0 / math.sqrt(1.0 + t * t)
    s = c * t
    return RotationParams(cos=c, sin=s, t=t)


def dataflow_rotation(
    norm_i: float, norm_j: float, cov: float, *, eps: float = 0.0
) -> RotationParams:
    """Rotation parameters via the FPGA dataflow equations (8)-(10).

    The hardware avoids computing ``rho`` (whose magnitude can overflow
    when ``cov`` underflows) by forming

        ``t   = |2 cov| / (|d| + sqrt(d^2 + 4 cov^2))``          (eq. 8)
        ``cos = sqrt((d^2 + 2 c2 + |d| r) / (d^2 + 4 c2 + |d| r))``  (eq. 9)
        ``sin = sign * sqrt(2 c2 / (d^2 + 4 c2 + |d| r))``       (eq. 10)

    with ``d = norm_j - norm_i``, ``c2 = 2 cov^2`` and
    ``r = sqrt(d^2 + 4 cov^2)``; ``sign`` restores the sign of the
    annihilating tangent, ``sign(d * cov)``.  Only add/sub/mul/div/sqrt
    are used, matching the operator inventory of the Jacobi rotation
    component (1 mul, 2 add, 1 div, 1 sqrt, time-multiplexed).
    """
    norm_i, norm_j, cov = float(norm_i), float(norm_j), float(cov)
    if abs(cov) <= eps:
        return RotationParams.IDENTITY
    d = norm_j - norm_i
    # Equations (8)-(10) are homogeneous of degree zero in (d, cov):
    # scaling both by the same factor leaves t, cos, sin unchanged.
    # Normalizing by the larger magnitude keeps the squares below from
    # under/overflowing for denormal or huge Gram entries.  (The raw
    # fixed-latency datapath has no such prescaler; for inputs whose
    # squares underflow, real hardware would flush the rotation — a
    # fidelity deviation documented in tests/core/test_rotation.py.)
    scale = max(abs(d), abs(cov))
    d /= scale
    cov_s = cov / scale
    abs_d = abs(d)
    c2 = 2.0 * cov_s * cov_s  # 2*cov^2
    four_c2 = 2.0 * c2  # 4*cov^2
    r = math.sqrt(d * d + four_c2)
    t_mag = abs(2.0 * cov_s) / (abs_d + r)
    denom = d * d + four_c2 + abs_d * r
    c = math.sqrt((d * d + c2 + abs_d * r) / denom)
    s_mag = math.sqrt(c2 / denom)
    s = sign(d) * sign(cov) * s_mag
    t = sign(d) * sign(cov) * t_mag
    return RotationParams(cos=c, sin=s, t=t)


def two_sided_angles(
    app: float, apq: float, aqp: float, aqq: float
) -> tuple[float, float]:
    """Left/right rotation angles for the classic two-sided Jacobi (eq. 5).

    Returns ``(left, right)`` angles such that with
    ``R(theta) = [[cos, sin], [-sin, cos]]`` the transform
    ``R(left)ᵀ @ [[app, apq], [aqp, aqq]] @ R(right)`` is diagonal
    (Brent-Luk-Van Loan formulation; the paper's eq. 2-5 with
    ``beta + alpha`` and ``beta - alpha`` given by the two arctangents).
    """
    sum_angle = math.atan2(aqp + apq, aqq - app)
    diff_angle = math.atan2(aqp - apq, aqq + app)
    beta = 0.5 * (sum_angle + diff_angle)
    alpha = 0.5 * (sum_angle - diff_angle)
    return alpha, beta


def apply_rotation_columns(
    a: np.ndarray, i: int, j: int, params: RotationParams
) -> None:
    """In-place column update per eq. (11)-(12): rotate columns *i*, *j*.

    Vectorized over the m rows — this is what one hardware update kernel
    streams element-pair by element-pair.
    """
    if params.identity:
        return
    c, s = params.cos, params.sin
    ai = a[:, i].copy()
    a[:, i] = ai * c - a[:, j] * s
    a[:, j] = ai * s + a[:, j] * c


def apply_round_columns(
    a: np.ndarray,
    idx_i: np.ndarray,
    idx_j: np.ndarray,
    c: np.ndarray,
    s: np.ndarray,
) -> None:
    """Rotate disjoint column pairs of *a* in one gather/scatter update.

    The batched form of :func:`apply_rotation_columns` (eq. 11-12) for a
    whole tournament round: pair k rotates columns ``idx_i[k]`` and
    ``idx_j[k]`` by ``(c[k], s[k])``.  Because the index pairs of a
    round are disjoint, the elementwise arithmetic is identical to
    applying the rotations one at a time — same operations, same
    operands, same order per element — so the result is bit-identical
    to the sequential loop.
    """
    cols_i = a[:, idx_i].copy()
    cols_j = a[:, idx_j]
    a[:, idx_i] = cols_i * c - cols_j * s
    a[:, idx_j] = cols_i * s + cols_j * c


def rotated_norms(
    norm_i: float, norm_j: float, cov: float, params: RotationParams
) -> tuple[float, float]:
    """Post-rotation squared norms (Algorithm 1 lines 15-16).

    ``D_ii' = D_ii - t*cov`` and ``D_jj' = D_jj + t*cov``; the pair's
    covariance becomes exactly zero.  The identity rotation leaves both
    unchanged.
    """
    if params.identity:
        return norm_i, norm_j
    delta = params.t * cov
    return norm_i - delta, norm_j + delta


def new_covariance(
    norm_i: float, norm_j: float, cov: float, params: RotationParams
) -> float:
    """Covariance of the rotated pair — zero in exact arithmetic.

    Provided for tests: evaluates ``cs*(n_i - n_j) + (c^2 - s^2)*cov``
    which is the analytic post-rotation covariance.
    """
    c, s = params.cos, params.sin
    return c * s * (norm_i - norm_j) + (c * c - s * s) * cov


def apply_rotation_gram(
    d: np.ndarray, i: int, j: int, params: RotationParams, cov: float
) -> None:
    """In-place congruence update of the full symmetric Gram matrix.

    Implements Algorithm 1 lines 15-26 on a *full* (not
    upper-triangular) n x n array, which permits vectorized row/column
    updates: ``D <- Jᵀ D J`` restricted to the (i, j) plane.

    Parameters
    ----------
    d : numpy.ndarray
        Symmetric Gram matrix, updated in place.
    i, j : int
        Rotated column indices, ``i < j``.
    params : RotationParams
        Rotation parameters previously computed from ``d`` at (i, j).
    cov : float
        The pre-rotation covariance ``d[i, j]`` (passed explicitly so a
        cached value can be reused, as the hardware does).
    """
    if params.identity:
        return
    c, s = params.cos, params.sin
    t = params.t

    # Off-plane rows/columns: every k not in {i, j}.  A temporary copy of
    # column i is required (the paper's pseudocode overwrites D_ki before
    # reusing it; see DESIGN.md errata).
    col_i = d[:, i].copy()
    col_j = d[:, j].copy()
    d[:, i] = col_i * c - col_j * s
    d[:, j] = col_i * s + col_j * c
    row_i = d[i, :].copy()
    row_j = d[j, :].copy()
    d[i, :] = row_i * c - row_j * s
    d[j, :] = row_i * s + row_j * c

    # The 2x2 plane block: closed forms from lines 15-17 (numerically
    # better than the generic congruence, and exactly what the hardware
    # computes — the covariance is *assigned* zero, not rounded to it).
    delta = t * cov
    norm_i = col_i[i]  # pre-rotation D_ii
    norm_j = col_j[j]  # pre-rotation D_jj
    d[i, i] = norm_i - delta
    d[j, j] = norm_j + delta
    d[i, j] = 0.0
    d[j, i] = 0.0
