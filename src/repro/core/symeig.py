"""Cyclic Jacobi eigensolver for symmetric matrices.

The mathematical cousin of everything in this library: the one-sided
Hestenes iteration on A is *exactly* the two-sided Jacobi eigenvalue
iteration on the Gram matrix ``D = AᵀA`` (each column rotation acts on
D as the congruence ``JᵀDJ``).  A standalone symmetric eigensolver
therefore serves two purposes:

* cross-validation — ``eig(AᵀA) == sigma(A)^2`` ties the SVD engines
  to an independent implementation (tests/core/test_symeig.py);
* a building block — the block-Jacobi SVD
  (:mod:`repro.core.block_jacobi`) diagonalizes its 2b x 2b pivot
  blocks with it.

Implementation: classical cyclic Jacobi with the stable rotation choice
(same ``rho/t/cos/sin`` formulas as Algorithm 1) and optional
eigenvector accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion
from repro.core.ordering import make_sweep
from repro.core.rotation import apply_rotation_gram, textbook_rotation
from repro.util.numerics import frobenius_off_diagonal
from repro.util.validation import as_square_matrix

__all__ = ["jacobi_eigh"]


def jacobi_eigh(
    a,
    *,
    compute_vectors: bool = True,
    criterion: ConvergenceCriterion | None = None,
    ordering: str = "cyclic",
    seed=None,
    tol_scale: float = 1e-15,
):
    """Eigendecomposition of a symmetric matrix by cyclic Jacobi.

    Parameters
    ----------
    a : array_like
        Symmetric matrix (symmetry is checked to rounding and then
        enforced by symmetrizing).
    compute_vectors : bool
        Accumulate the orthogonal eigenvector matrix V with
        ``a = V diag(w) Vᵀ``.
    criterion : ConvergenceCriterion
        Sweep budget; default 30 sweeps with natural termination (a
        sweep that rotates nothing).
    ordering, seed
        Pair ordering, as in the SVD drivers.
    tol_scale : float
        Relative threshold below which an off-diagonal entry counts as
        already zero (against ``||a||_F``).

    Returns
    -------
    (w, v)
        Eigenvalues ascending (LAPACK ``eigh`` convention) and the
        eigenvector matrix (or None), columns aligned with ``w``.
    """
    a = as_square_matrix(a, name="a")
    # Max-abs scale: a Frobenius norm would overflow (underflow) for
    # entries beyond 1e154 (below 1e-154), breaking the thresholds.
    amax = max(float(np.max(np.abs(a))), np.finfo(float).tiny)
    if not np.allclose(a, a.T, atol=1e-8 * amax):
        raise ValueError("a must be symmetric")
    d = (a + a.T) / 2.0
    n = d.shape[0]
    criterion = criterion or ConvergenceCriterion(max_sweeps=30, tol=None)
    v = np.eye(n) if compute_vectors else None
    scale = amax

    for _sweep in range(criterion.max_sweeps):
        rotations = 0
        for round_pairs in make_sweep(n, ordering, seed):
            for i, j in round_pairs:
                entry = d[i, j]
                if abs(entry) <= tol_scale * scale:
                    continue
                p = textbook_rotation(d[i, i], d[j, j], entry)
                apply_rotation_gram(d, i, j, p, entry)
                if v is not None:
                    ci = v[:, i].copy()
                    v[:, i] = ci * p.cos - v[:, j] * p.sin
                    v[:, j] = ci * p.sin + v[:, j] * p.cos
                rotations += 1
        if rotations == 0:
            break
        if criterion.tol is not None and frobenius_off_diagonal(d) <= criterion.tol:
            break

    w = np.diag(d).copy()
    order = np.argsort(w)
    w = w[order]
    if v is not None:
        v = v[:, order]
    return w, v
