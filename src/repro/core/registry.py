"""The engine registry: one place where SVD engines are declared.

Historically the engine vocabulary lived in a stringly ``METHODS``
tuple plus three hand-maintained if/elif ladders (``core.svd``
dispatch, the serving layer's executor, and the CLI's ``choices``
lists).  Adding an engine meant touching all of them.  This module
replaces that with one :class:`EngineSpec` per engine:

* ``name`` — the public method/engine identifier;
* ``fn`` — an adapter with the uniform engine signature
  ``fn(a, *, compute_uv, criterion, ordering, seed, **engine_opts)``;
* ``supported_orderings`` — pair orderings the engine accepts
  (validated at dispatch, so e.g. ``blocked`` still rejects "row");
* ``options_schema`` — the engine-specific knobs (``rotation_impl``,
  ``block_rounds``, ...) with their allowed values or a validator;
* ``instrumented`` — whether the engine emits ``core.sweep`` spans
  through :mod:`repro.obs`.

:func:`resolve_engine` is the single lookup all three layers use;
:func:`register_engine` makes adding an engine one registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.ordering import ORDERINGS
from repro.util.validation import check_positive_float, check_positive_int

__all__ = [
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "resolve_engine",
    "engine_names",
    "METHODS",
]


@dataclass(frozen=True)
class EngineSpec:
    """Declaration of one SVD engine.

    Attributes
    ----------
    name : str
        Public identifier (the ``method=``/``engine=`` value).
    fn : callable
        ``fn(a, *, compute_uv, criterion, ordering, seed,
        **engine_opts) -> SVDResult``.  Adapters for engines that do
        not take an ordering (blocked, preconditioned) drop it.
    supported_orderings : tuple of str
        Pair orderings the engine accepts; dispatch validates against
        this before calling ``fn``.
    options_schema : mapping
        Engine-specific option name -> allowed values.  A tuple means
        membership; a callable is invoked with the value (raising on
        rejection); None accepts anything.
    instrumented : bool
        Whether the engine emits spans via :mod:`repro.obs`.
    description : str
        One-line summary (shown by ``repro trace``-style tooling).
    """

    name: str
    fn: Callable
    supported_orderings: tuple = ORDERINGS
    options_schema: Mapping = field(default_factory=dict)
    instrumented: bool = True
    description: str = ""

    def validate_options(self, opts: Mapping) -> dict:
        """Check *opts* against the schema; returns a plain dict.

        Raises ``ValueError`` naming the offending option, both for
        unknown keys (e.g. ``block_rounds`` on a non-vectorized
        engine) and out-of-choices values.
        """
        out = {}
        for key, value in dict(opts).items():
            if key not in self.options_schema:
                valid = sorted(self.options_schema) or ["(none)"]
                raise ValueError(
                    f"{key} is not an option of engine {self.name!r}; "
                    f"valid engine_opts: {valid}"
                )
            allowed = self.options_schema[key]
            if isinstance(allowed, tuple):
                if value not in allowed:
                    raise ValueError(
                        f"engine {self.name!r} option {key}={value!r}: "
                        f"must be one of {allowed}"
                    )
            elif callable(allowed):
                allowed(value)
            out[key] = value
        return out

    def validate_ordering(self, ordering: str) -> str:
        """Check *ordering* is supported; returns it unchanged."""
        if ordering not in self.supported_orderings:
            raise ValueError(
                f'method="{self.name}" supports ordering(s) '
                f"{self.supported_orderings}, got {ordering!r}"
            )
        return ordering


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
    """Add *spec* to the registry (``replace=True`` to overwrite)."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine (primarily for tests registering temporaries)."""
    _REGISTRY.pop(name, None)


def resolve_engine(name: str) -> EngineSpec:
    """Look up an engine by name; the one resolution path for core,
    serve, and the CLI."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown engine/method {name!r}: registered engines are "
            f"{engine_names()}"
        )
    return spec


def engine_names() -> tuple:
    """Currently registered engine names, in registration order."""
    return tuple(_REGISTRY)


# ---- built-in engine registrations --------------------------------------
#
# The adapters normalize every engine to the uniform signature; lazy
# imports keep the vectorized/preconditioned modules off the critical
# import path, mirroring the old dispatch.


def _run_reference(a, *, compute_uv, criterion, ordering, seed, **opts):
    from repro.core.hestenes import reference_svd

    return reference_svd(
        a, compute_uv=compute_uv, criterion=criterion, ordering=ordering,
        seed=seed, **opts,
    )


def _run_modified(a, *, compute_uv, criterion, ordering, seed, **opts):
    from repro.core.modified import modified_svd

    return modified_svd(
        a, compute_uv=compute_uv, criterion=criterion, ordering=ordering,
        seed=seed, **opts,
    )


def _run_blocked(a, *, compute_uv, criterion, ordering, seed, **opts):
    from repro.core.blocked import blocked_svd

    return blocked_svd(a, compute_uv=compute_uv, criterion=criterion, **opts)


def _run_vectorized(a, *, compute_uv, criterion, ordering, seed, **opts):
    from repro.core.vectorized import vectorized_svd

    return vectorized_svd(
        a, compute_uv=compute_uv, criterion=criterion, ordering=ordering,
        seed=seed, **opts,
    )


def _run_preconditioned(a, *, compute_uv, criterion, ordering, seed, **opts):
    from repro.core.preconditioned import preconditioned_svd

    return preconditioned_svd(a, compute_uv=compute_uv, criterion=criterion, **opts)


def _positive_int(value) -> None:
    check_positive_int(value, name="block_rounds")


def _positive_float(value) -> None:
    check_positive_float(value, name="switch_tol")


_ROTATION_IMPLS = ("textbook", "dataflow")
_PRECISIONS = ("fp64", "mixed", "fp32")
_TRACK_MODES = ("always", "first_sweep", "never")

register_engine(EngineSpec(
    name="reference",
    fn=_run_reference,
    supported_orderings=ORDERINGS,
    options_schema={"pair_threshold": None},
    description="plain Hestenes one-sided Jacobi (recomputed dot products)",
))
register_engine(EngineSpec(
    name="modified",
    fn=_run_modified,
    supported_orderings=ORDERINGS,
    options_schema={"rotation_impl": _ROTATION_IMPLS,
                    "track_columns": _TRACK_MODES},
    description="Algorithm 1 with covariance caching, sequential order",
))
register_engine(EngineSpec(
    name="blocked",
    fn=_run_blocked,
    supported_orderings=("cyclic",),
    options_schema={"rotation_impl": _ROTATION_IMPLS,
                    "track_columns": _TRACK_MODES},
    description="hardware-scheduled round-parallel modified algorithm",
))
register_engine(EngineSpec(
    name="vectorized",
    fn=_run_vectorized,
    supported_orderings=ORDERINGS,
    options_schema={"rotation_impl": _ROTATION_IMPLS,
                    "block_rounds": _positive_int,
                    "pair_threshold": None,
                    "precision": _PRECISIONS,
                    "switch_tol": _positive_float},
    description="round-parallel column-space engine with batched rotations "
                "and fp64/mixed/fp32 precision schedules",
))
register_engine(EngineSpec(
    name="preconditioned",
    fn=_run_preconditioned,
    supported_orderings=("cyclic",),
    options_schema={"pivot": (True, False)},
    instrumented=True,
    description="Householder QR + direct Jacobi on R (Drmac-Veselic)",
))

#: Built-in engine names — the single engine-registry definition the
#: rest of the repository (core dispatch, serve, CLI, tests) consumes.
METHODS = engine_names()
