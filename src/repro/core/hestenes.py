"""Reference one-sided Jacobi (Hestenes) SVD.

This is the *unmodified* Hestenes-Jacobi method: for every column pair
the squared 2-norms and covariance are recomputed from the current
columns (three length-m dot products per pair, per sweep).  It serves
two roles in the reproduction:

1. the numerical gold standard the modified algorithm is tested against
   (it never squares the condition number, since rotations are applied
   directly to columns), and
2. the behavioural model of the prior FPGA design [12] the paper
   criticizes for "repeated calculations" — the ablation benchmark
   counts exactly those recomputed dot products.

The decomposition loop follows Hestenes' biorthogonalization: sweeps of
plane rotations until the columns of ``B = A V`` are pairwise
orthogonal; then ``sigma_l = ||b_l||`` and ``u_l = b_l / sigma_l``.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.ordering import make_sweep
from repro.core.result import SVDResult
from repro.core.rotation import apply_rotation_columns, textbook_rotation
from repro.obs import noop_span, round_detail, span
from repro.obs.health import sweep_guard
from repro.util.numerics import sort_svd
from repro.util.validation import as_float_matrix

__all__ = ["reference_svd", "FlopCounter", "finalize_columns"]


class FlopCounter:
    """Tallies the dot products a non-caching Hestenes sweep recomputes.

    Each pair orthogonalization recomputes three length-m dot products
    (two squared norms + one covariance) = ``6m`` flops; the modified
    algorithm of the paper replaces them with O(1) cached reads.  The
    ablation benchmark reports both counters side by side.
    """

    def __init__(self) -> None:
        self.dot_products = 0
        self.dot_flops = 0
        self.update_flops = 0

    def add_pair(self, m: int) -> None:
        """Record the norm/covariance recomputation for one pair."""
        self.add_pairs(m, 1)

    def add_update(self, m: int) -> None:
        """Record one column-pair rotation update (eq. 11-12)."""
        self.add_updates(m, 1)

    def add_pairs(self, m: int, count: int) -> None:
        """Record *count* pairs' norm/covariance recomputations at once.

        The round-parallel engine examines a whole round of disjoint
        pairs per batched pass; charging them through this method keeps
        its totals identical to the scalar loop's pair-at-a-time tally.
        """
        self.dot_products += 3 * count
        self.dot_flops += 6 * m * count

    def add_updates(self, m: int, count: int) -> None:
        """Record *count* column-pair rotation updates at once."""
        self.update_flops += 6 * m * count

    @property
    def total_flops(self) -> int:
        return self.dot_flops + self.update_flops


def reference_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    ordering: str = "cyclic",
    seed=None,
    pair_threshold: float = 1e-15,
    flops: FlopCounter | None = None,
) -> SVDResult:
    """One-sided Jacobi SVD with per-pair norm/covariance recomputation.

    Parameters
    ----------
    a : array_like
        Input m x n matrix (any rectangular shape).
    compute_uv : bool
        When True, return U and Vᵀ in addition to the singular values.
    criterion : ConvergenceCriterion
        Sweep cap and optional early-stopping threshold.  Default:
        ``ConvergenceCriterion(max_sweeps=30, tol=None)`` — generous,
        because the reference implementation doubles as the accuracy
        gold standard.  The loop also stops when a full sweep performs
        no rotation (every pair already orthogonal to *pair_threshold*).
    ordering : str
        Pair ordering per sweep; see :data:`repro.core.ordering.ORDERINGS`.
    seed
        Only used by the "random" ordering.
    pair_threshold : float
        Relative skip threshold: the pair (i, j) is rotated only when
        ``|cov| > pair_threshold * sqrt(norm_i * norm_j)`` (de Rijk's
        criterion).  Guarantees termination in floating point.
    flops : FlopCounter, optional
        When given, recomputation work is tallied into it.

    Returns
    -------
    SVDResult
        Economy-size decomposition, singular values descending.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    criterion = criterion or ConvergenceCriterion(max_sweeps=30, tol=None)

    b = a.copy()
    v = np.eye(n) if compute_uv else None
    trace = ConvergenceTrace(metric=criterion.metric)
    trace.record(0, measure(b.T @ b, criterion.metric))

    converged = False
    sweeps_done = 0
    rspan = span if round_detail() else noop_span
    for sweep in range(1, criterion.max_sweeps + 1):
        with span("core.sweep", method="reference", sweep=sweep) as sweep_span:
            rotations = 0
            skipped = 0
            for round_index, round_pairs in enumerate(make_sweep(n, ordering, seed)):
                with rspan("core.round", round=round_index, pairs=len(round_pairs)):
                    for i, j in round_pairs:
                        bi = b[:, i]
                        bj = b[:, j]
                        norm_i = float(bi @ bi)
                        norm_j = float(bj @ bj)
                        cov = float(bi @ bj)
                        if flops is not None:
                            flops.add_pair(m)
                        # sqrt per factor: the product ni*nj overflows for
                        # squared norms above 1e154 (columns of scale ~1e77).
                        if abs(cov) <= (
                            pair_threshold * np.sqrt(norm_i) * np.sqrt(norm_j)
                        ):
                            skipped += 1
                            continue
                        params = textbook_rotation(norm_i, norm_j, cov)
                        apply_rotation_columns(b, i, j, params)
                        if v is not None:
                            apply_rotation_columns(v, i, j, params)
                        if flops is not None:
                            flops.add_update(m)
                        rotations += 1
            sweeps_done = sweep
            value = measure(b.T @ b, criterion.metric)
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("reference", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    trace.converged = converged

    s, u, vt = finalize_columns(b, v, compute_uv=compute_uv)

    return SVDResult(
        s=s,
        u=u,
        vt=vt,
        sweeps=sweeps_done,
        trace=trace,
        method="reference",
        converged=converged,
    )


def finalize_columns(
    b: np.ndarray, v: np.ndarray | None, *, compute_uv: bool
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Extract ``(s, u, vt)`` from orthogonalized columns ``B = A V``.

    Singular values are the column norms of *b*; left vectors are the
    normalized non-negligible columns, with the zero-singular-value
    columns completed to an orthonormal basis so ``UᵀU = I`` always
    holds.  Shared by every column-space engine (reference and
    vectorized) so their finalization is bit-identical.
    """
    with span("core.finalize", m=b.shape[0], n=b.shape[1]):
        return _finalize_columns(b, v, compute_uv=compute_uv)


def _finalize_columns(
    b: np.ndarray, v: np.ndarray | None, *, compute_uv: bool
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
    m, n = b.shape
    norms = np.linalg.norm(b, axis=0)
    k = min(m, n)
    if not compute_uv:
        _, s, _ = sort_svd(None, norms, None)
        return s[:k], None, None
    u_full = np.zeros_like(b)
    s_max = float(np.max(norms)) if norms.size else 0.0
    cutoff = s_max * max(m, n) * np.finfo(np.float64).eps
    nonzero = norms > cutoff
    u_full[:, nonzero] = b[:, nonzero] / norms[nonzero]
    u, s, vt = sort_svd(u_full, norms, v.T)
    u, s, vt = u[:, :k], s[:k], vt[:k, :]
    # Columns of U belonging to (numerically) zero singular values are
    # completed to an orthonormal set so UᵀU = I always holds.
    zero_cols = np.linalg.norm(u, axis=0) < 0.5
    if np.any(zero_cols):
        u = _complete_orthonormal(u, zero_cols)
    return s, u, vt


def _complete_orthonormal(u: np.ndarray, zero_cols: np.ndarray) -> np.ndarray:
    """Fill the flagged columns of *u* with vectors orthonormal to the rest.

    The complement projector ``P = I - U_good U_goodᵀ`` has eigenvalues
    exactly 1 (on the orthogonal complement) and 0 (on span(U_good));
    its unit-eigenvalue eigenvectors are the completion basis.  The
    eigendecomposition runs on the library's own cyclic Jacobi solver —
    deterministic and immune to the rank-deficiency pitfalls of an
    unpivoted QR (whose basis can leak into span(U_good) when a column
    prefix of P is singular).
    """
    from repro.core.symeig import jacobi_eigh

    u = u.copy()
    m = u.shape[0]
    good = u[:, ~zero_cols]
    proj = np.eye(m) - good @ good.T
    w, vecs = jacobi_eigh(proj)
    # Eigenvalues ascending: the trailing ones are the (numerically
    # exact) unit eigenvalues spanning the complement.
    needed = int(np.sum(zero_cols))
    u[:, zero_cols] = vecs[:, m - needed :]
    return u
