"""Convergence metrics, stopping criteria and per-sweep traces.

The paper evaluates convergence as the *mean absolute deviation from
zero of the covariances* after each sweep (Figs 10-11) and runs a fixed
six sweeps "believed sufficient for achieving convergence with certain
thresholds".  The library supports both regimes:

* fixed sweep count (hardware-faithful), and
* threshold-based early stopping on any supported metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.numerics import (
    frobenius_off_diagonal,
    mean_abs_off_diagonal,
    relative_off_diagonal,
)
from repro.util.validation import check_in_choices, check_positive_int

__all__ = ["METRICS", "ConvergenceCriterion", "ConvergenceTrace", "measure"]

#: Supported convergence metrics, keyed by name:
#:
#: ``mean_abs``  - mean |D_ij|, i<j (the paper's Figs 10-11 metric)
#: ``off_fro``   - Frobenius norm of the strict upper triangle
#: ``relative``  - off_fro / ||D||_F (scale free)
#: ``max_abs``   - max |D_ij|, i<j
METRICS = ("mean_abs", "off_fro", "relative", "max_abs")


def measure(d: np.ndarray, metric: str = "mean_abs") -> float:
    """Evaluate one convergence metric on a covariance matrix *d*."""
    check_in_choices(metric, METRICS, name="metric")
    if metric == "mean_abs":
        return mean_abs_off_diagonal(d)
    if metric == "off_fro":
        return frobenius_off_diagonal(d)
    if metric == "relative":
        return relative_off_diagonal(d)
    n = d.shape[0]
    if n < 2:
        return 0.0
    iu = np.triu_indices(n, k=1)
    return float(np.max(np.abs(d[iu])))


@dataclass(frozen=True)
class ConvergenceCriterion:
    """Stopping rule for the sweep loop.

    Attributes
    ----------
    max_sweeps : int
        Hard cap on sweeps (the paper uses 6).
    tol : float or None
        Early-stop threshold on *metric*; ``None`` disables early
        stopping, reproducing the fixed-sweep hardware behaviour.
    metric : str
        One of :data:`METRICS`.
    """

    max_sweeps: int = 6
    tol: float | None = None
    metric: str = "mean_abs"

    def __post_init__(self) -> None:
        check_positive_int(self.max_sweeps, name="max_sweeps")
        check_in_choices(self.metric, METRICS, name="metric")
        if self.tol is not None and not (self.tol >= 0.0):
            raise ValueError(f"tol must be >= 0 or None, got {self.tol}")

    def satisfied(self, value: float) -> bool:
        """True when *value* (the current metric) meets the threshold."""
        return self.tol is not None and value <= self.tol


@dataclass
class ConvergenceTrace:
    """Per-sweep record of a decomposition run.

    ``values[k]`` is the metric *after* sweep k+1 (``values[0]`` may
    optionally hold the pre-iteration value when the caller records it
    with ``sweep_index=0``).  Used directly to regenerate Figs 10-11.
    """

    metric: str = "mean_abs"
    sweeps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    rotations: list[int] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)
    converged: bool = False

    def record(
        self, sweep_index: int, value: float, rotations: int = 0, skipped: int = 0
    ) -> None:
        """Append one sweep's measurements."""
        self.sweeps.append(int(sweep_index))
        self.values.append(float(value))
        self.rotations.append(int(rotations))
        self.skipped.append(int(skipped))

    @property
    def n_sweeps(self) -> int:
        """Number of completed sweeps recorded (excludes a sweep-0 entry)."""
        return sum(1 for s in self.sweeps if s > 0)

    @property
    def final_value(self) -> float:
        """Metric value after the last recorded sweep (inf when empty)."""
        return self.values[-1] if self.values else float("inf")

    def series(self) -> tuple[list[int], list[float]]:
        """(sweep indices, metric values) — plotting-ready for Fig 10/11."""
        return list(self.sweeps), list(self.values)

    def to_csv(self, path=None) -> str:
        """CSV rendering of the trace (one row per recorded sweep).

        Columns: ``sweep,<metric>,rotations,skipped`` — exactly the
        data behind the paper's Figs 10-11 convergence curves, in a
        form any plotting tool ingests directly.  When *path* is given
        the CSV is also written there; the text is returned either way.

        >>> t = ConvergenceTrace()
        >>> t.record(0, 0.5); t.record(1, 0.01, 3, 1)
        >>> print(t.to_csv(), end="")
        sweep,mean_abs,rotations,skipped
        0,0.5,0,0
        1,0.01,3,1
        """
        lines = [f"sweep,{self.metric},rotations,skipped"]
        for sweep, value, rot, skip in zip(
            self.sweeps, self.values, self.rotations, self.skipped
        ):
            lines.append(f"{sweep},{value!r},{rot},{skip}")
        text = "\n".join(lines) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text
