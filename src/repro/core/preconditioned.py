"""QR-preconditioned one-sided Jacobi SVD (Drmač-Veselić style).

The production refinement of the Hestenes method (LAPACK's xGEJSV):
first factor ``A = Q R`` with Householder QR, then run one-sided Jacobi
on the small n x n triangular factor ``R`` and compose
``A = (Q U_R) S Vᵀ``.  Two wins, both directly relevant to the paper's
tall-matrix sweet spot:

* the Jacobi sweeps run on n x n instead of m x n — for m >> n the
  dominant cost collapses from O(m n^2) per sweep to O(n^3), the same
  economy the paper's hardware gets from covariance caching;
* QR with column pivoting *preconditions* R, and the direct Jacobi
  iteration on R preserves high *relative* accuracy of every singular
  value — including tiny ones — where Gram-cached iterations are
  limited to ~eps * cond (see the accuracy study).

The QR step reuses the library's own Householder machinery
(:mod:`repro.baselines.householder`); the inner Jacobi is the direct
reference engine, so the full stack remains self-contained.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.householder import apply_reflector_left, householder_vector
from repro.core.convergence import ConvergenceCriterion
from repro.core.hestenes import reference_svd
from repro.core.result import SVDResult
from repro.obs import span
from repro.obs.health import sweep_guard
from repro.util.validation import as_float_matrix

__all__ = ["householder_qr", "preconditioned_svd"]


def householder_qr(a, *, pivot: bool = True):
    """Householder QR with optional column pivoting.

    Returns ``(q, r, perm)`` with ``q``: (m, n) orthonormal columns,
    ``r``: (n, n) upper triangular and ``perm`` the column permutation
    (``a[:, perm] = q @ r``).  Requires m >= n.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    if m < n:
        raise ValueError("householder_qr requires m >= n; transpose first")
    work = a.copy()
    perm = np.arange(n)
    reflectors: list[tuple[int, np.ndarray, float]] = []
    for k in range(n):
        if pivot:
            # Classical column pivoting: bring the largest remaining
            # column (by trailing norm) to position k.
            norms = np.linalg.norm(work[k:, k:], axis=0)
            j = k + int(np.argmax(norms))
            if j != k:
                work[:, [k, j]] = work[:, [j, k]]
                perm[[k, j]] = perm[[j, k]]
        v, beta = householder_vector(work[k:, k])
        apply_reflector_left(work[k:, k:], v, beta)
        reflectors.append((k, v, beta))
    r = np.triu(work[:n, :])
    q = np.eye(m, n)
    for k, v, beta in reversed(reflectors):
        apply_reflector_left(q[k:, :], v, beta)
    return q, r, perm


def preconditioned_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    pivot: bool = True,
) -> SVDResult:
    """SVD via QR preconditioning + one-sided Jacobi on R.

    Parameters
    ----------
    a : array_like
        Input m x n matrix; wide inputs are handled by transposition.
    compute_uv : bool
        Accumulate the factors.
    criterion : ConvergenceCriterion
        Sweep budget of the inner Jacobi (default 12 with natural
        termination — preconditioning usually finishes in 3-5).
    pivot : bool
        Column pivoting in the QR step (stronger preconditioning).

    Returns
    -------
    SVDResult with ``method="preconditioned"``.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    if m < n:
        # Factor the transpose and swap the roles of U and V.
        res = preconditioned_svd(
            a.T, compute_uv=compute_uv, criterion=criterion, pivot=pivot
        )
        if compute_uv:
            return SVDResult(
                s=res.s, u=res.vt.T, vt=res.u.T, sweeps=res.sweeps,
                trace=res.trace, method="preconditioned", converged=res.converged,
            )
        return SVDResult(
            s=res.s, sweeps=res.sweeps, trace=res.trace,
            method="preconditioned", converged=res.converged,
        )

    criterion = criterion or ConvergenceCriterion(max_sweeps=12, tol=None)
    with span("core.precondition", method="preconditioned", m=m, n=n, pivot=pivot):
        q, r, perm = householder_qr(a, pivot=pivot)
        # Guard the factorization itself: a non-finite R poisons every
        # inner sweep, so flag it at sweep 0 (the inner reference engine
        # guards its own sweeps under its "reference" label).
        sweep_guard(
            "preconditioned", 0, float(np.max(np.abs(r))) if r.size else 0.0
        )
    # Direct (recompute) Jacobi on R: the column rotations act on the
    # actual data, preserving high relative accuracy even for extreme
    # conditioning — the Drmač-Veselić property a cached-Gram inner
    # iteration would forfeit.  R is n x n, so the recomputed dot
    # products are cheap regardless of the original row count.
    inner = reference_svd(r, compute_uv=compute_uv, criterion=criterion)
    if not compute_uv:
        return SVDResult(
            s=inner.s, sweeps=inner.sweeps, trace=inner.trace,
            method="preconditioned", converged=inner.converged,
        )
    u = q @ inner.u
    # Undo the pivoting on the right factor: A[:, perm] = Q R, so
    # A = Q R Pᵀ and Vᵀ picks up the inverse permutation on its columns.
    vt = np.zeros_like(inner.vt)
    vt[:, perm] = inner.vt
    return SVDResult(
        s=inner.s, u=u, vt=vt, sweeps=inner.sweeps,
        trace=inner.trace, method="preconditioned", converged=inner.converged,
    )
