"""Top-level SVD API.

:func:`hestenes_svd` is the single entry point most users need; it
dispatches to the implementations of the paper's algorithm:

* ``method="reference"`` — plain Hestenes one-sided Jacobi (recomputes
  norms/covariances; gold standard; models the prior design [12]).
* ``method="modified"`` — Algorithm 1 with covariance caching (the
  paper's algorithmic contribution), sequential pair order.
* ``method="blocked"`` — the same algorithm scheduled in round-parallel
  batches exactly as the FPGA issues them; fastest in NumPy.
* ``method="vectorized"`` — the *reference* recompute-from-columns
  numerics scheduled round-parallel: batched norms/covariances, batched
  rotation parameters, one gather/scatter column update per round (plus
  a ``block_rounds`` fusion knob for the sequential orderings).
* ``method="preconditioned"`` — Householder QR first, direct Jacobi on
  the n x n triangular factor (Drmač-Veselić style): row-count-
  independent sweep cost and full relative accuracy.

For the cycle-level hardware simulation of the same computation, see
:class:`repro.hw.architecture.HestenesJacobiAccelerator`, which wraps
the blocked implementation with the timing and resource models.
"""

from __future__ import annotations

from repro.core.blocked import blocked_svd
from repro.core.convergence import ConvergenceCriterion
from repro.core.hestenes import reference_svd
from repro.core.modified import modified_svd
from repro.core.result import SVDResult
from repro.util.validation import check_in_choices

__all__ = ["hestenes_svd", "METHODS", "HestenesJacobiSVD"]

METHODS = ("reference", "modified", "blocked", "vectorized", "preconditioned")


def hestenes_svd(
    a,
    *,
    method: str = "blocked",
    compute_uv: bool = True,
    max_sweeps: int = 6,
    tol: float | None = None,
    metric: str = "mean_abs",
    ordering: str = "cyclic",
    rotation_impl: str = "textbook",
    track_columns: str = "first_sweep",
    block_rounds: int = 1,
    seed=None,
) -> SVDResult:
    """Singular value decomposition by the Hestenes-Jacobi method.

    Parameters
    ----------
    a : array_like
        Arbitrary m x n real matrix (the Hestenes method has no squareness
        restriction — the point of the paper versus two-sided Jacobi).
    method : {"blocked", "modified", "reference", "vectorized", "preconditioned"}
        Implementation; see module docstring.
    compute_uv : bool
        Compute U and Vᵀ (True) or singular values only (False — the
        hardware-faithful output).
    max_sweeps : int
        Sweep cap; the paper's hardware runs a fixed 6.
    tol : float or None
        Optional early-stopping threshold on *metric* after each sweep.
    metric : str
        Convergence metric name (:data:`repro.core.convergence.METRICS`).
    ordering : str
        Pair ordering ("cyclic", "row", "random").  "blocked" requires
        the cyclic ordering (its rounds are what get batched).
    rotation_impl : {"textbook", "dataflow"}
        Rotation parameter formulation (Algorithm 1 vs eq. 8-10).
    track_columns : {"always", "first_sweep", "never"}
        Column-update schedule for the modified/blocked methods.
    block_rounds : int
        Round-fusion width of the vectorized engine (1 = no fusion);
        only valid with ``method="vectorized"``.
    seed
        Used only by the "random" ordering.

    Returns
    -------
    SVDResult
        Singular values descending; economy-size U/Vᵀ when requested.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import hestenes_svd
    >>> a = np.array([[4.0, 1.0], [2.0, 3.0], [0.0, 5.0]])
    >>> res = hestenes_svd(a)
    >>> np.allclose(res.s, np.linalg.svd(a, compute_uv=False))
    True
    """
    check_in_choices(method, METHODS, name="method")
    if block_rounds != 1 and method != "vectorized":
        raise ValueError(
            f'block_rounds is a method="vectorized" option, '
            f"got block_rounds={block_rounds!r} with method={method!r}"
        )
    criterion = ConvergenceCriterion(max_sweeps=max_sweeps, tol=tol, metric=metric)
    if method == "vectorized":
        from repro.core.vectorized import vectorized_svd

        return vectorized_svd(
            a,
            compute_uv=compute_uv,
            criterion=criterion,
            ordering=ordering,
            seed=seed,
            rotation_impl=rotation_impl,
            block_rounds=block_rounds,
        )
    if method == "preconditioned":
        from repro.core.preconditioned import preconditioned_svd

        return preconditioned_svd(a, compute_uv=compute_uv, criterion=criterion)
    if method == "reference":
        return reference_svd(
            a,
            compute_uv=compute_uv,
            criterion=criterion,
            ordering=ordering,
            seed=seed,
        )
    if method == "modified":
        return modified_svd(
            a,
            compute_uv=compute_uv,
            criterion=criterion,
            ordering=ordering,
            seed=seed,
            rotation_impl=rotation_impl,
            track_columns=track_columns,
        )
    if ordering != "cyclic":
        raise ValueError(
            f'method="blocked" requires the cyclic ordering, got {ordering!r}'
        )
    return blocked_svd(
        a,
        compute_uv=compute_uv,
        criterion=criterion,
        rotation_impl=rotation_impl,
        track_columns=track_columns,
    )


class HestenesJacobiSVD:
    """Reusable, pre-configured Hestenes-Jacobi solver.

    Stores the keyword configuration once so parameter sweeps and
    pipelines can call :meth:`decompose` repeatedly:

    >>> solver = HestenesJacobiSVD(max_sweeps=8, method="blocked")
    >>> import numpy as np
    >>> r = solver.decompose(np.eye(4))
    >>> [float(v) for v in r.s]
    [1.0, 1.0, 1.0, 1.0]
    """

    def __init__(self, **options) -> None:
        # Validate eagerly by probing the option names against the
        # function signature, so typos fail at construction time.
        valid = {
            "method",
            "compute_uv",
            "max_sweeps",
            "tol",
            "metric",
            "ordering",
            "rotation_impl",
            "track_columns",
            "block_rounds",
            "seed",
        }
        unknown = set(options) - valid
        if unknown:
            raise TypeError(f"unknown options: {sorted(unknown)}")
        self.options = dict(options)

    def decompose(self, a, **overrides) -> SVDResult:
        """Run the decomposition with stored options plus *overrides*."""
        merged = {**self.options, **overrides}
        return hestenes_svd(a, **merged)

    def singular_values(self, a):
        """Convenience: singular values only (hardware-faithful output)."""
        return self.decompose(a, compute_uv=False).s

    def __repr__(self) -> str:
        opts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.options.items()))
        return f"HestenesJacobiSVD({opts})"
