"""Top-level SVD API.

:func:`hestenes_svd` is the single entry point most users need; it
resolves the requested engine through
:mod:`repro.core.registry` and dispatches to the implementations of
the paper's algorithm:

* ``method="reference"`` — plain Hestenes one-sided Jacobi (recomputes
  norms/covariances; gold standard; models the prior design [12]).
* ``method="modified"`` — Algorithm 1 with covariance caching (the
  paper's algorithmic contribution), sequential pair order.
* ``method="blocked"`` — the same algorithm scheduled in round-parallel
  batches exactly as the FPGA issues them; fastest in NumPy.
* ``method="vectorized"`` — the *reference* recompute-from-columns
  numerics scheduled round-parallel: batched norms/covariances, batched
  rotation parameters, one gather/scatter column update per round (plus
  a ``block_rounds`` fusion knob for the sequential orderings).
* ``method="preconditioned"`` — Householder QR first, direct Jacobi on
  the n x n triangular factor (Drmač-Veselić style): row-count-
  independent sweep cost and full relative accuracy.

Engine-specific knobs travel in the validated ``engine_opts`` mapping
(``{"block_rounds": 4}``, ``{"pivot": False}``, ...); the historical
``block_rounds=`` keyword still works as a deprecation shim.  Adding an
engine is one :func:`repro.core.registry.register_engine` call — the
serving layer and CLI resolve engines through the same registry.

For the cycle-level hardware simulation of the same computation, see
:class:`repro.hw.architecture.HestenesJacobiAccelerator`, which wraps
the blocked implementation with the timing and resource models.
"""

from __future__ import annotations

import warnings

from repro.core.convergence import ConvergenceCriterion
from repro.core.registry import METHODS, resolve_engine
from repro.core.result import SVDResult
from repro.obs.health import observe_result

__all__ = ["hestenes_svd", "METHODS", "HestenesJacobiSVD"]


def _normalize_engine_opts(engine_opts) -> dict:
    """Accept a mapping or an iterable of (key, value) pairs."""
    if engine_opts is None:
        return {}
    if isinstance(engine_opts, dict):
        return dict(engine_opts)
    try:
        return dict(engine_opts)
    except (TypeError, ValueError):
        raise TypeError(
            f"engine_opts must be a mapping of option name -> value, "
            f"got {engine_opts!r}"
        ) from None


def hestenes_svd(
    a,
    *,
    method: str = "blocked",
    compute_uv: bool = True,
    max_sweeps: int = 6,
    tol: float | None = None,
    metric: str = "mean_abs",
    ordering: str = "cyclic",
    rotation_impl: str = "textbook",
    track_columns: str = "first_sweep",
    precision: str = "fp64",
    engine_opts=None,
    block_rounds: int | None = None,
    seed=None,
) -> SVDResult:
    """Singular value decomposition by the Hestenes-Jacobi method.

    Parameters
    ----------
    a : array_like
        Arbitrary m x n real matrix (the Hestenes method has no squareness
        restriction — the point of the paper versus two-sided Jacobi).
    method : str
        Engine name; any engine registered in
        :mod:`repro.core.registry` (built-ins: :data:`METHODS`).
    compute_uv : bool
        Compute U and Vᵀ (True) or singular values only (False — the
        hardware-faithful output).
    max_sweeps : int
        Sweep cap; the paper's hardware runs a fixed 6.
    tol : float or None
        Optional early-stopping threshold on *metric* after each sweep.
    metric : str
        Convergence metric name (:data:`repro.core.convergence.METRICS`).
    ordering : str
        Pair ordering ("cyclic", "row", "random"), validated against the
        engine's ``supported_orderings`` ("blocked" and "preconditioned"
        accept only the cyclic default).
    rotation_impl : {"textbook", "dataflow"}
        Rotation parameter formulation (Algorithm 1 vs eq. 8-10);
        forwarded to engines that support it.
    track_columns : {"always", "first_sweep", "never"}
        Column-update schedule for the modified/blocked methods.
    precision : {"fp64", "mixed", "fp32"}
        Working-precision schedule, for engines that declare it (the
        vectorized engine): "mixed" runs float32 bulk sweeps with an
        fp64 cleanup (fp64-class accuracy, ~2.5x faster at n>=256),
        "fp32" stays in float32 throughout (documented ~1e-5 accuracy
        class).  Requesting a non-default precision from an engine
        without precision support raises ``ValueError`` rather than
        silently computing in fp64.
    engine_opts : mapping, optional
        Engine-specific options, validated against the engine's
        ``options_schema`` — e.g. ``{"block_rounds": 4}`` for the
        vectorized engine or ``{"pivot": False}`` for preconditioned.
        Unknown options and out-of-range values raise ``ValueError``.
    block_rounds : int, optional
        Deprecated alias for ``engine_opts={"block_rounds": ...}``
        (round-fusion width of the vectorized engine); emits a
        ``DeprecationWarning``.
    seed
        Used only by the "random" ordering.

    Returns
    -------
    SVDResult
        Singular values descending; economy-size U/Vᵀ when requested.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import hestenes_svd
    >>> a = np.array([[4.0, 1.0], [2.0, 3.0], [0.0, 5.0]])
    >>> res = hestenes_svd(a)
    >>> np.allclose(res.s, np.linalg.svd(a, compute_uv=False))
    True
    """
    spec = resolve_engine(method)
    spec.validate_ordering(ordering)
    opts = _normalize_engine_opts(engine_opts)
    # Legacy keyword folding: the historical top-level knobs flow into
    # engine_opts for engines that declare them and are ignored (as
    # they always were) elsewhere; explicit engine_opts wins.
    if "rotation_impl" in spec.options_schema:
        opts.setdefault("rotation_impl", rotation_impl)
    if "track_columns" in spec.options_schema:
        opts.setdefault("track_columns", track_columns)
    if "precision" in spec.options_schema:
        opts.setdefault("precision", precision)
    elif precision != "fp64" or opts.get("precision", "fp64") != "fp64":
        # Engines without a precision schedule always compute in fp64;
        # failing loudly beats silently ignoring an accuracy/latency
        # request (the serve layer relies on this for submit rejection).
        raise ValueError(
            f'method="{spec.name}" does not support reduced precision; '
            f'precision={precision!r} is only available on engines '
            f'declaring a "precision" engine_opt (e.g. "vectorized")'
        )
    if block_rounds is not None:
        warnings.warn(
            "hestenes_svd(block_rounds=...) is deprecated; pass "
            "engine_opts={'block_rounds': ...} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if block_rounds != 1:
            opts.setdefault("block_rounds", block_rounds)
    opts = spec.validate_options(opts)
    criterion = ConvergenceCriterion(max_sweeps=max_sweeps, tol=tol, metric=metric)
    result = spec.fn(
        a,
        compute_uv=compute_uv,
        criterion=criterion,
        ordering=ordering,
        seed=seed,
        **opts,
    )
    return observe_result(result, engine=spec.name, matrix=a)


class HestenesJacobiSVD:
    """Reusable, pre-configured Hestenes-Jacobi solver.

    Stores the keyword configuration once so parameter sweeps and
    pipelines can call :meth:`decompose` repeatedly:

    >>> solver = HestenesJacobiSVD(max_sweeps=8, method="blocked")
    >>> import numpy as np
    >>> r = solver.decompose(np.eye(4))
    >>> [float(v) for v in r.s]
    [1.0, 1.0, 1.0, 1.0]
    """

    def __init__(self, **options) -> None:
        # Validate eagerly by probing the option names against the
        # function signature, so typos fail at construction time.
        valid = {
            "method",
            "compute_uv",
            "max_sweeps",
            "tol",
            "metric",
            "ordering",
            "rotation_impl",
            "track_columns",
            "precision",
            "engine_opts",
            "block_rounds",
            "seed",
        }
        unknown = set(options) - valid
        if unknown:
            raise TypeError(f"unknown options: {sorted(unknown)}")
        self.options = dict(options)

    def decompose(self, a, **overrides) -> SVDResult:
        """Run the decomposition with stored options plus *overrides*."""
        merged = {**self.options, **overrides}
        return hestenes_svd(a, **merged)

    def singular_values(self, a):
        """Convenience: singular values only (hardware-faithful output)."""
        return self.decompose(a, compute_uv=False).s

    def __repr__(self) -> str:
        opts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.options.items()))
        return f"HestenesJacobiSVD({opts})"
