"""Block one-sided Jacobi SVD — the natural scaling extension.

Where Algorithm 1 orthogonalizes *pairs of columns*, the block variant
orthogonalizes *pairs of column blocks*: for blocks (I, J) of width b,
form the 2b x 2b Gram of ``[A_I A_J]``, diagonalize it (cyclic Jacobi
eigensolver, :mod:`repro.core.symeig`), and apply the resulting
orthogonal transform to the 2b columns at once.  Each block sweep does
strictly more orthogonalization work per data pass, which is the
standard route to scaling Jacobi methods past the paper's
single-column-pair datapath (larger update kernels amortizing BRAM
bandwidth) — the kind of follow-on the paper's future-work section
implies.

Convergence comparison against the scalar method is an ablation
benchmark; correctness is tied to the same invariants as every other
engine here.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.hestenes import _complete_orthonormal
from repro.core.ordering import cyclic_sweep
from repro.core.result import SVDResult
from repro.core.symeig import jacobi_eigh
from repro.util.numerics import sort_svd
from repro.util.validation import as_float_matrix, check_positive_int

__all__ = ["block_jacobi_svd"]


def _block_slices(n: int, block: int) -> list[np.ndarray]:
    """Column index arrays for contiguous blocks of width <= block."""
    return [np.arange(s, min(s + block, n)) for s in range(0, n, block)]


def block_jacobi_svd(
    a,
    *,
    block: int = 4,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    inner_sweeps: int = 12,
) -> SVDResult:
    """SVD by block one-sided Jacobi.

    Parameters
    ----------
    a : array_like
        Input m x n matrix.
    block : int
        Column-block width b; ``block=1`` degenerates to the scalar
        method (with an eigensolver doing each 2x2).
    compute_uv : bool
        Accumulate factors.
    criterion : ConvergenceCriterion
        Outer sweep budget; default 6 outer sweeps (each does far more
        work than a scalar sweep).
    inner_sweeps : int
        Sweep budget of the 2b x 2b eigensolver.

    Returns
    -------
    SVDResult with ``method="block_jacobi"``.
    """
    a = as_float_matrix(a, name="a")
    check_positive_int(block, name="block")
    criterion = criterion or ConvergenceCriterion(max_sweeps=6, tol=None)
    m, n = a.shape

    b_mat = a.copy()
    v = np.eye(n) if compute_uv else None
    blocks = _block_slices(n, block)
    n_blocks = len(blocks)
    trace = ConvergenceTrace(metric=criterion.metric)
    trace.record(0, measure(b_mat.T @ b_mat, criterion.metric))

    inner_criterion = ConvergenceCriterion(max_sweeps=inner_sweeps, tol=None)
    converged = False
    sweeps_done = 0
    for sweep in range(1, criterion.max_sweeps + 1):
        rotations = 0
        if n_blocks == 1:
            pair_rounds = [[(0, 0)]]  # single block: orthogonalize it alone
        else:
            pair_rounds = cyclic_sweep(n_blocks)
        for rnd in pair_rounds:
            for bi, bj in rnd:
                if bi == bj:
                    cols = blocks[bi]
                else:
                    cols = np.concatenate([blocks[bi], blocks[bj]])
                sub = b_mat[:, cols]
                gram = sub.T @ sub
                # Max-based comparison: a Frobenius norm of the Gram
                # squares entries that may already be squared column
                # norms, underflowing for tiny-scale inputs.
                off = float(np.max(np.abs(gram - np.diag(np.diag(gram)))))
                if off <= 1e-15 * max(float(np.max(np.abs(gram))), 1e-300):
                    continue
                _, q = jacobi_eigh(gram, criterion=inner_criterion)
                # Apply the diagonalizing transform to the block columns.
                b_mat[:, cols] = sub @ q
                if v is not None:
                    v[:, cols] = v[:, cols] @ q
                rotations += 1
        sweeps_done = sweep
        value = measure(b_mat.T @ b_mat, criterion.metric)
        trace.record(sweep, value, rotations)
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    trace.converged = converged

    norms = np.linalg.norm(b_mat, axis=0)
    k = min(m, n)
    if not compute_uv:
        _, s, _ = sort_svd(None, norms, None)
        return SVDResult(
            s=s[:k], sweeps=sweeps_done, trace=trace,
            method="block_jacobi", converged=converged,
        )
    u_full = np.zeros((m, n))
    s_max = float(np.max(norms)) if norms.size else 0.0
    cutoff = s_max * max(m, n) * np.finfo(np.float64).eps
    nonzero = norms > cutoff
    u_full[:, nonzero] = b_mat[:, nonzero] / norms[nonzero]
    u, s, vt = sort_svd(u_full, norms, v.T)
    u, s, vt = u[:, :k], s[:k], vt[:k, :]
    zero_cols = np.linalg.norm(u, axis=0) < 0.5
    if np.any(zero_cols):
        u = _complete_orthonormal(u, zero_cols)
    return SVDResult(
        s=s, u=u, vt=vt, sweeps=sweeps_done, trace=trace,
        method="block_jacobi", converged=converged,
    )
