"""The paper's modified Hestenes-Jacobi algorithm (Algorithm 1).

The key idea: maintain the column Gram ("covariance") matrix
``D = BᵀB`` explicitly and *update* it after every rotation instead of
recomputing squared norms and covariances from the columns.  A rotation
of columns (i, j) acts on D as the congruence ``D <- Jᵀ D J``, which
touches only rows/columns i and j — O(n) work versus O(m) per dot
product times three dot products, repeated every sweep, for the plain
method.  Columns themselves only need updating while left singular
vectors are wanted, which is why the FPGA reconfigures its Hestenes
preprocessor into extra update kernels after the first sweep.

Fidelity knobs mirror the hardware:

* ``rotation_impl="dataflow"`` computes cos/sin/t through the
  division-restructured equations (8)-(10) exactly as the Jacobi
  rotation component does; ``"textbook"`` uses Algorithm 1 lines 11-14.
* ``track_columns`` selects how long column updates run:
  ``"first_sweep"`` is the paper's schedule, ``"always"`` keeps B exact
  (useful for U), ``"never"`` skips them entirely (pure-Σ mode).

Singular values are ``sqrt(diag(D))`` after the final sweep (Algorithm 1
lines 28-29), computed by the rotation component's square-root operator
in hardware.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.hestenes import _complete_orthonormal
from repro.core.ordering import make_sweep
from repro.core.result import SVDResult
from repro.core.rotation import (
    RotationParams,
    apply_rotation_columns,
    apply_rotation_gram,
    dataflow_rotation,
    textbook_rotation,
)
from repro.obs import noop_span, round_detail, span
from repro.obs.health import sweep_guard
from repro.util.numerics import sort_svd
from repro.util.validation import as_float_matrix, check_in_choices

__all__ = ["modified_svd", "gram_matrix", "TRACK_COLUMN_MODES", "ROTATION_IMPLS"]

TRACK_COLUMN_MODES = ("always", "first_sweep", "never")
ROTATION_IMPLS = ("textbook", "dataflow")


def gram_matrix(a: np.ndarray) -> np.ndarray:
    """Full symmetric covariance matrix ``D = AᵀA`` (Algorithm 1 lines 2-4).

    The hardware computes only the upper triangle (the preprocessor's
    multiplier-arrays walk j >= i); we store the full symmetric matrix
    so congruence updates vectorize, which is numerically identical.
    """
    a = np.asarray(a, dtype=np.float64)
    return a.T @ a


def _rotation_fn(rotation_impl: str):
    check_in_choices(rotation_impl, ROTATION_IMPLS, name="rotation_impl")
    return textbook_rotation if rotation_impl == "textbook" else dataflow_rotation


def modified_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    ordering: str = "cyclic",
    seed=None,
    rotation_impl: str = "textbook",
    track_columns: str = "first_sweep",
    pair_threshold: float = 0.0,
    polish: bool = False,
    refresh_every: int | None = None,
) -> SVDResult:
    """SVD via Algorithm 1: covariance caching + incremental updates.

    Parameters
    ----------
    a : array_like
        Input m x n matrix.
    compute_uv : bool
        When True, the rotations are accumulated into V and the left
        factor is recovered as ``U = B / sigma`` (when columns were
        tracked to the end) or ``U = (A V) / sigma`` (eq. 7) otherwise.
    criterion : ConvergenceCriterion
        Defaults to the paper's fixed 6 sweeps with no early stop.
    ordering, seed
        Pair ordering (default the paper's cyclic order of Fig. 6).
    rotation_impl : {"textbook", "dataflow"}
        Which rotation-parameter formulation to use; both are exact in
        real arithmetic and agree to rounding in float64.
    track_columns : {"always", "first_sweep", "never"}
        Sweep range over which eq. (11)-(12) column updates execute.
        The paper's hardware uses "first_sweep".
    pair_threshold : float
        Absolute skip threshold on ``|cov|`` relative to
        ``sqrt(D_ii D_jj)``; 0.0 rotates every non-orthogonal pair,
        matching the fixed-function hardware.
    polish : bool
        Append a recompute-based refinement: after the cached sweeps,
        re-orthogonalize the actual columns with the reference method
        (warm start, so typically 1-2 cheap sweeps).  The cached D
        drifts from the true Gram at the ``eps * cond(A)^2`` level — an
        inherent trade-off of Algorithm 1 that limits tiny singular
        values and U-orthogonality for ill-conditioned inputs; the
        polish restores the reference method's accuracy at roughly one
        extra Gram phase of cost.  Requires ``compute_uv=True``.
    refresh_every : int, optional
        Recompute D from the tracked columns every *refresh_every*
        sweeps (one extra preprocessor pass each time).  Scrubs both
        accumulated congruence roundoff and any soft-error corruption
        of the cached covariances (see the resilience ablation).
        Requires ``track_columns="always"``.

    Returns
    -------
    SVDResult
    """
    a = as_float_matrix(a, name="a")
    check_in_choices(track_columns, TRACK_COLUMN_MODES, name="track_columns")
    if refresh_every is not None:
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        if track_columns != "always":
            raise ValueError('refresh_every requires track_columns="always"')
    rotate = _rotation_fn(rotation_impl)
    criterion = criterion or ConvergenceCriterion(max_sweeps=6, tol=None)

    m, n = a.shape
    d = gram_matrix(a)
    track_b = track_columns != "never"
    b = a.copy() if track_b else None
    v = np.eye(n) if compute_uv else None

    trace = ConvergenceTrace(metric=criterion.metric)
    trace.record(0, measure(d, criterion.metric))

    converged = False
    sweeps_done = 0
    rspan = span if round_detail() else noop_span
    for sweep in range(1, criterion.max_sweeps + 1):
        update_cols = b is not None and (track_columns == "always" or sweep == 1)
        with span("core.sweep", method="modified", sweep=sweep) as sweep_span:
            rotations = 0
            skipped = 0
            for round_index, round_pairs in enumerate(make_sweep(n, ordering, seed)):
                with rspan("core.round", round=round_index, pairs=len(round_pairs)):
                    for i, j in round_pairs:
                        cov = d[i, j]
                        norm_i = d[i, i]
                        norm_j = d[j, j]
                        # sqrt per factor: the product would overflow for
                        # squared norms above 1e154.
                        guard = np.sqrt(max(norm_i, 0.0)) * np.sqrt(
                            max(norm_j, 0.0)
                        )
                        if cov == 0.0 or abs(cov) <= pair_threshold * guard:
                            skipped += 1
                            continue
                        params: RotationParams = rotate(norm_i, norm_j, cov)
                        apply_rotation_gram(d, i, j, params, cov)
                        if update_cols:
                            apply_rotation_columns(b, i, j, params)
                        if v is not None:
                            apply_rotation_columns(v, i, j, params)
                        rotations += 1
            sweeps_done = sweep
            if refresh_every is not None and sweep % refresh_every == 0:
                d = gram_matrix(b)  # the scrub: one extra preprocessor pass
            value = measure(d, criterion.metric)
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("modified", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    trace.converged = converged

    if polish:
        if not compute_uv:
            raise ValueError("polish requires compute_uv=True")
        return _polish(a, v, sweeps_done, trace, criterion)

    with span("core.finalize", m=m, n=n):
        # Algorithm 1 lines 28-29: singular values from the diagonal of D.
        diag = np.diag(d).copy()
        diag[diag < 0.0] = 0.0  # roundoff can leave tiny negatives
        sigma_all = np.sqrt(diag)
        k = min(m, n)

        if not compute_uv:
            _, s, _ = sort_svd(None, sigma_all, None)
            return SVDResult(
                s=s[:k],
                sweeps=sweeps_done,
                trace=trace,
                method="modified",
                converged=converged,
            )

        # Left factor: from tracked columns when exact, else via eq. (7).
        if track_columns == "always":
            b_final = b
        else:
            b_final = a @ v
        u_full = np.zeros((m, n))
        s_max = float(np.max(sigma_all)) if sigma_all.size else 0.0
        cutoff = s_max * max(m, n) * np.finfo(np.float64).eps
        nonzero = sigma_all > cutoff
        u_full[:, nonzero] = b_final[:, nonzero] / sigma_all[nonzero]
        u, s, vt = sort_svd(u_full, sigma_all, v.T)
        u, s, vt = u[:, :k], s[:k], vt[:k, :]
        zero_cols = np.linalg.norm(u, axis=0) < 0.5
        if np.any(zero_cols):
            u = _complete_orthonormal(u, zero_cols)
        return SVDResult(
            s=s,
            u=u,
            vt=vt,
            sweeps=sweeps_done,
            trace=trace,
            method="modified",
            converged=converged,
        )


def _polish(a, v, cached_sweeps, trace, criterion):
    """Refinement pass: reference-method sweeps on B = A V (warm start).

    Composes the accumulated rotations: ``A (V V_polish) = B_final``,
    so the returned factors carry the combined transform while the
    singular values/vectors regain the recompute method's accuracy.
    """
    from repro.core.hestenes import reference_svd

    b = a @ v
    refined = reference_svd(
        b,
        compute_uv=True,
        criterion=ConvergenceCriterion(
            max_sweeps=max(criterion.max_sweeps, 4), tol=None
        ),
    )
    # B = U S Wᵀ with W the polish rotations on B's columns:
    # A = B Vᵀ = U S (V W)ᵀ.
    vt = refined.vt @ v.T
    if refined.trace is not None:
        for s_idx, value, rot, skip in zip(
            refined.trace.sweeps,
            refined.trace.values,
            refined.trace.rotations,
            refined.trace.skipped,
        ):
            if s_idx == 0:
                continue
            trace.record(cached_sweeps + s_idx, value, rot, skip)
    trace.converged = refined.converged
    return SVDResult(
        s=refined.s,
        u=refined.u,
        vt=vt,
        sweeps=cached_sweeps + refined.sweeps,
        trace=trace,
        method="modified+polish",
        converged=refined.converged,
    )
