"""Fused-store sweep kernel for the reduced-precision Jacobi schedules.

This module is the machinery behind the ``precision`` knob of
:func:`repro.core.vectorized.vectorized_svd` — the software analogue of
the paper's cheap-arithmetic rotation cascade (see "A mixed precision
Jacobi SVD algorithm", Gao/Ma/Shao).  The engine's default fp64 path
never touches it; the ``"mixed"`` and ``"fp32"`` schedules run on the
kernel here:

* :class:`FusedSweeper` performs one Jacobi sweep over a fused
  ``[Bᵀ | Vᵀ]`` row store with Algorithm 1's cached-norm updates and
  one stacked ``(k,2,2) @ (k,2,width)`` matmul per round.
* :func:`fp32_phase` runs bulk float32 sweeps until the scale-free
  off-diagonal estimate drops below the switch threshold (or the fp32
  noise floor, or the sweeps stop making progress).
* :func:`polar_orthonormalize` is the mixed schedule's handoff step —
  two Newton-Schulz iterations that strip V of its fp32 orthogonality
  defect so the fp64 finish can reach the fp64 accuracy class.
* :func:`fused_fp64_finish` runs the finishing sweeps in float64 on
  the same fused store.

None of this carries the reference loop's bit-identity contract (only
the engine's default fp64 path does), which is what lets every routine
here trade exact arithmetic order for a large constant-factor win.
The sweep loops take their round schedules as a zero-argument
``make_plan`` callable built by the vectorized engine, so this module
never imports it back — the dependency points one way.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocked import batch_rotation_params
from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.hestenes import FlopCounter
from repro.obs import noop_span, round_detail, span
from repro.obs.health import sweep_guard

__all__ = [
    "FusedSweeper",
    "fp32_phase",
    "fused_fp64_finish",
    "polar_orthonormalize",
    "lean_rotation_params",
    "compile_fused_plan",
    "FP32_EST_FLOOR",
]

#: Below this scale-free off-diagonal estimate, further fp32 sweeps
#: cannot make reliable progress (the estimate itself is computed from
#: an fp32 Gram product, whose rounding floor is a few n*eps32); the
#: low-precision phase stops here even if ``switch_tol`` is smaller.
FP32_EST_FLOOR = 1e-6

#: Minimum de Rijk skip threshold used inside the fp32 phase: relative
#: covariances below eps32 are pure rounding noise in float32, so
#: rotating on them only churns the store.
_FP32_PAIR_FLOOR = float(np.finfo(np.float32).eps)


def polar_orthonormalize(v: np.ndarray, iterations: int = 2) -> np.ndarray:
    """Newton-Schulz polar iteration ``V ← V (3I − VᵀV) / 2``.

    Converges quadratically to the orthogonal polar factor whenever
    every singular value of V lies in (0, √3).  The fp32 phase hands
    over a product of plane rotations whose singular values sit at
    1 ± O(1e-5), so two iterations (four GEMMs) drive the orthogonality
    defect ``‖VᵀV − I‖_F`` from ~1e-5 through ~1e-10 to the fp64
    rounding floor — far cheaper than a QR re-factorization and, unlike
    a plain upcast, it removes the fp32 defect that would otherwise cap
    the finished accuracy at fp32 levels.
    """
    eye = np.eye(v.shape[1])
    for _ in range(iterations):
        v = v @ (1.5 * eye - 0.5 * (v.T @ v))
    return v


def lean_rotation_params(
    norm_i: np.ndarray,
    norm_j: np.ndarray,
    cov: np.ndarray,
    one,
    zero,
    neg_one,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lean evaluation of Algorithm 1's textbook rotation formulas.

    Same closed forms as :func:`repro.core.blocked.batch_rotation_params`
    stripped to the ~15 array ops the fused sweep loop actually needs
    (the general function's validation, sign bookkeeping and masking
    cost more than the arithmetic at round granularity).  ``one`` /
    ``zero`` / ``neg_one`` are scalars of the working dtype, which pins
    every intermediate to that dtype.  Two simplifications are exact:

    * No explicit huge-|rho| asymptote: ``rho*rho`` overflowing to inf
      drives ``t`` to 0, and the true asymptotic tangent ``1/(2 rho)``
      is below the working precision's resolution everywhere the
      overflow can happen (|rho| > 1e19 in float32, > 1e154 in float64).
    * Inactive pairs (``cov == 0``) produce ``t = ±inf → 0`` or ``nan``
      directly from the division; one final ``where`` pins them to the
      identity rotation.

    Caller must hold ``np.errstate(over/divide/invalid="ignore")``.
    Returns ``(c, s, t)``.
    """
    d = norm_j - norm_i
    rho = d / (cov + cov)
    t = np.where(
        cov == zero,
        zero,
        np.where(np.signbit(rho), neg_one, one)
        / (np.abs(rho) + np.sqrt(one + rho * rho)),
    )
    c = one / np.sqrt(one + t * t)
    return c, c * t, t


def compile_fused_plan(plan):
    """Stack each round's (i, j) indices as (k, 2) so one fancy-index
    gather yields the (k, 2, width) operand of the stacked matmul."""
    return [
        (idx_i, idx_j, np.stack([idx_i, idx_j], axis=1))
        for idx_i, idx_j in plan
    ]


class FusedSweeper:
    """One Jacobi sweep over a fused ``[Bᵀ | Vᵀ]`` row store.

    The workhorse of the reduced-precision schedules, shared by the
    fp32 bulk phase and the mixed schedule's fp64 finishing phase.  It
    departs from the bit-pinned fp64 reference loop in three ways, each
    a large constant-factor win at round granularity:

    * Column norms are *cached* and updated with Algorithm 1's closed
      form ``n_i ← n_i − t·cov`` / ``n_j ← n_j + t·cov`` instead of
      being recomputed, eliminating two of the three einsum reductions
      per round (the paper's own FPGA bookkeeping, lines 15-17).  Drift
      is O(eps) per update in the working dtype and only feeds the skip
      test and rotation angles, never the final singular values (those
      come from ``finalize_columns`` on the actual columns).
    * B and V share one gather/scatter: rotations act on rows of the
      fused store, so the V accumulation rides along at no extra
      indexing cost.
    * Each round's rotations apply as one stacked ``(k,2,2) @
      (k,2,width)`` matmul into a reused buffer — ~4x faster than the
      six separate elementwise passes at these operand sizes.
    """

    def __init__(
        self,
        w: np.ndarray,
        m: int,
        *,
        pair_threshold: float,
        rotation_impl: str,
        flops: FlopCounter | None,
    ):
        dtype = w.dtype
        self.w = w
        self.m = m
        self.norms = np.einsum("ij,ij->i", w[:, :m], w[:, :m])
        self.thresh = dtype.type(pair_threshold)
        self.one = dtype.type(1.0)
        self.zero = dtype.type(0.0)
        self.neg_one = dtype.type(-1.0)
        self.lean = rotation_impl == "textbook"
        self.rotation_impl = rotation_impl
        self.flops = flops
        self._rot = None
        self._out = None

    def sweep(self, plan, rspan) -> tuple[int, int]:
        """Run one full sweep; returns ``(rotations, skipped)``."""
        w = self.w
        m = self.m
        norms = self.norms
        flops = self.flops
        rotations = 0
        skipped = 0
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for round_index, (idx_i, idx_j, pair_idx) in enumerate(plan):
                with rspan("core.round", round=round_index, pairs=len(idx_i)):
                    x = w[pair_idx]
                    cov = np.einsum("kj,kj->k", x[:, 0, :m], x[:, 1, :m])
                    ni = norms[idx_i]
                    nj = norms[idx_j]
                    if flops is not None:
                        flops.add_pairs(m, len(idx_i))
                    active = np.abs(cov) > self.thresh * np.sqrt(
                        ni
                    ) * np.sqrt(nj)
                    n_active = int(np.count_nonzero(active))
                    skipped += len(idx_i) - n_active
                    if n_active == 0:
                        continue
                    rotations += n_active
                    # Zeroed covariances yield the identity rotation, so
                    # the whole round scatters in one shot without
                    # re-gathering a filtered subset.
                    if n_active < len(idx_i):
                        cov = np.where(active, cov, self.zero)
                    if self.lean:
                        c, s, t = lean_rotation_params(
                            ni, nj, cov, self.one, self.zero, self.neg_one
                        )
                    else:
                        c, s, t, _ = batch_rotation_params(
                            ni, nj, cov,
                            rotation_impl=self.rotation_impl,
                            dtype=w.dtype,
                        )
                    k = len(idx_i)
                    rot = self._rot
                    if rot is None or rot.shape[0] != k:
                        rot = self._rot = np.empty((k, 2, 2), dtype=w.dtype)
                        self._out = np.empty(
                            (k, 2, w.shape[1]), dtype=w.dtype
                        )
                    rot[:, 0, 0] = c
                    rot[:, 0, 1] = -s
                    rot[:, 1, 0] = s
                    rot[:, 1, 1] = c
                    np.matmul(rot, x, out=self._out)
                    w[pair_idx] = self._out
                    delta = t * cov
                    # max(…, 0): the cached norm drifts by O(eps) per
                    # update and must stay a valid squared length for
                    # the sqrt in the skip test.
                    norms[idx_i] = np.maximum(ni - delta, self.zero)
                    norms[idx_j] = nj + delta
                    if flops is not None:
                        flops.add_updates(m, n_active)
        return rotations, skipped


def fp32_phase(
    a: np.ndarray,
    *,
    criterion: ConvergenceCriterion,
    make_plan,
    pair_threshold: float,
    rotation_impl: str,
    switch_tol: float | None,
    budget: int,
    initial_estimate: float,
    trace: ConvergenceTrace,
    flops: FlopCounter | None,
) -> tuple[np.ndarray, int, bool]:
    """Run batched float32 sweeps on a fused ``[Bᵀ | Vᵀ]`` row store.

    ``make_plan`` is a zero-argument callable returning the compiled
    round schedule for one sweep (static orderings return the same
    plan every call; "random" recompiles).  Returns ``(w, sweeps_done,
    low_converged)`` where ``w`` is the float32 combined store (first
    ``m`` columns: Bᵀ; remaining ``n``: Vᵀ) and ``low_converged``
    reports whether the loop stopped because a full sweep performed no
    rotation or the criterion's own tolerance was met — the only two
    outcomes that count as *convergence* for the pure-fp32 tier
    (hitting ``switch_tol`` merely hands over to fp64).
    """
    m, n = a.shape
    w = np.zeros((n, m + n), dtype=np.float32)
    w[:, :m] = a.T
    np.fill_diagonal(w[:, m:], 1.0)
    sweeper = FusedSweeper(
        w,
        m,
        pair_threshold=max(pair_threshold, _FP32_PAIR_FLOOR),
        rotation_impl=rotation_impl,
        flops=flops,
    )

    low_converged = False
    sweeps_done = 0
    prev_est = float("inf")
    est = initial_estimate
    rspan = span if round_detail() else noop_span
    for sweep in range(1, budget + 1):
        plan = make_plan()
        with span(
            "core.sweep", method="vectorized", sweep=sweep, precision="fp32"
        ) as sweep_span:
            rotations, skipped = sweeper.sweep(plan, rspan)
            sweeps_done = sweep
            bpart = w[:, :m]
            g = bpart @ bpart.T
            value = measure(g, criterion.metric)
            est = float(measure(g, "relative"))
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("vectorized", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            low_converged = True
            break
        if switch_tol is not None and est <= switch_tol:
            break
        if est <= FP32_EST_FLOOR or est >= prev_est:
            # fp32 noise floor reached, or the sweep stopped improving
            # the estimate — burning more cheap sweeps cannot help.
            break
        prev_est = est
    return w, sweeps_done, low_converged


def fused_fp64_finish(
    w: np.ndarray,
    m: int,
    *,
    criterion: ConvergenceCriterion,
    make_plan,
    pair_threshold: float,
    rotation_impl: str,
    trace: ConvergenceTrace,
    flops: FlopCounter | None,
    start_sweep: int,
) -> tuple[int, bool]:
    """fp64 finishing sweeps of the mixed schedule, on a fused store.

    Same stopping rules and trace schema as the vectorized engine's
    fp64 sweep loop but runs the :class:`FusedSweeper` kernel in
    float64 — the mixed schedule carries no bit-identity contract with
    the reference loop (only the default fp64 path does), so its
    finishing sweeps can use the fused store's cheaper
    gather/matmul/scatter round shape too.  Returns ``(sweeps_done,
    converged)`` with ``sweeps_done`` absolute.
    """
    sweeper = FusedSweeper(
        w,
        m,
        pair_threshold=pair_threshold,
        rotation_impl=rotation_impl,
        flops=flops,
    )
    converged = False
    sweeps_done = start_sweep
    rspan = span if round_detail() else noop_span
    for sweep in range(start_sweep + 1, criterion.max_sweeps + 1):
        plan = make_plan()
        with span("core.sweep", method="vectorized", sweep=sweep) as sweep_span:
            rotations, skipped = sweeper.sweep(plan, rspan)
            sweeps_done = sweep
            bpart = w[:, :m]
            value = measure(bpart @ bpart.T, criterion.metric)
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("vectorized", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    return sweeps_done, converged
