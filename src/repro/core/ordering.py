"""Vector-pair orderings for Jacobi sweeps.

A *sweep* orthogonalizes every unordered pair of the n columns exactly
once (n(n-1)/2 rotations).  The order matters for convergence speed and
for parallel hardware:

* :func:`cyclic_sweep` — the paper's "cyclic order" (Fig. 6), the
  round-robin tournament schedule of Brent & Luk: indices sit in two
  rows; index 0 is pinned and the remaining n-1 indices rotate one slot
  per round.  Each of the n-1 rounds yields n/2 *disjoint* pairs, which
  is what lets the hardware issue groups of independent rotations (the
  dashed box in Fig. 6 is one such group).
* :func:`row_cyclic_sweep` — the classical sequential row-by-row order
  (i, j) for i < j; a single "round" per pair (no parallelism exposed).
* :func:`random_sweep` — random pair order, useful as an ablation
  control for convergence-order experiments.

All functions return ``list[list[tuple[int, int]]]``: a list of rounds,
each round a list of (i, j) pairs with i < j; pairs within a round are
index-disjoint for the parallel orderings.
"""

from __future__ import annotations

from repro.util.rng import default_rng
from repro.util.validation import check_positive_int

__all__ = [
    "cyclic_sweep",
    "row_cyclic_sweep",
    "random_sweep",
    "make_sweep",
    "group_pairs",
    "fuse_rounds",
    "all_pairs",
    "ORDERINGS",
]


def all_pairs(n: int) -> list[tuple[int, int]]:
    """All unordered index pairs (i, j), i < j, in row-major order."""
    n = check_positive_int(n, name="n")
    return [(i, j) for i in range(n - 1) for j in range(i + 1, n)]


def cyclic_sweep(n: int) -> list[list[tuple[int, int]]]:
    """Round-robin tournament rounds covering every pair exactly once.

    For even n there are n-1 rounds of n/2 disjoint pairs.  For odd n a
    virtual "bye" index is added and dropped, giving n rounds of
    (n-1)/2 pairs.  Matches the movement arrows of Fig. 6: position 0
    fixed, all other indices rotate by one position per round.

    Examples
    --------
    >>> cyclic_sweep(4)
    [[(0, 3), (1, 2)], [(0, 2), (1, 3)], [(0, 1), (2, 3)]]
    """
    n = check_positive_int(n, name="n")
    if n == 1:
        return []
    bye = None
    idx = list(range(n))
    if n % 2 == 1:
        idx.append(-1)  # virtual bye
        bye = -1
    size = len(idx)
    rounds: list[list[tuple[int, int]]] = []
    # Standard circle method: fix idx[0]; rotate the rest each round.
    ring = idx[1:]
    for _ in range(size - 1):
        order = [idx[0]] + ring
        round_pairs = []
        for k in range(size // 2):
            a, b = order[k], order[size - 1 - k]
            if bye is not None and (a == bye or b == bye):
                continue
            round_pairs.append((a, b) if a < b else (b, a))
        rounds.append(round_pairs)
        ring = [ring[-1]] + ring[:-1]
    return rounds


def row_cyclic_sweep(n: int) -> list[list[tuple[int, int]]]:
    """Sequential row-cyclic order: one pair per round, (0,1), (0,2), ...

    This is the order Algorithm 1's nested loops walk; it exposes no
    parallelism but is the easiest to reason about and is the classical
    choice in proofs of cyclic-Jacobi convergence.
    """
    return [[p] for p in all_pairs(n)]


def random_sweep(n: int, seed=None) -> list[list[tuple[int, int]]]:
    """All pairs exactly once, in a random order (one pair per round)."""
    rng = default_rng(seed)
    pairs = all_pairs(n)
    rng.shuffle(pairs)
    return [[p] for p in pairs]


ORDERINGS = ("cyclic", "row", "random")


def make_sweep(n: int, ordering: str = "cyclic", seed=None):
    """Dispatch on ordering name — see :data:`ORDERINGS`."""
    if ordering == "cyclic":
        return cyclic_sweep(n)
    if ordering == "row":
        return row_cyclic_sweep(n)
    if ordering == "random":
        return random_sweep(n, seed)
    raise ValueError(f"ordering must be one of {ORDERINGS}, got {ordering!r}")


def fuse_rounds(
    rounds: list[list[tuple[int, int]]], block_rounds: int = 1
) -> list[list[tuple[int, int]]]:
    """Greedily merge consecutive rounds whose pairs stay index-disjoint.

    At most *block_rounds* consecutive rounds are fused into one
    super-round, and a fusion stops early as soon as the next round
    would reuse an index already rotated in the current super-round —
    so every fused round remains a set of independent plane rotations
    that one batched gather/scatter update can apply.

    The cyclic ordering already packs all n (or n-1) indices into every
    round, so nothing fuses there; the sequential orderings ("row",
    "random") emit one pair per round, and fusing recovers round-level
    parallelism for them.  Pair order and coverage are preserved:
    concatenating the output rounds yields exactly the input pairs.

    Examples
    --------
    >>> fuse_rounds([[(0, 1)], [(2, 3)], [(0, 2)]], block_rounds=2)
    [[(0, 1), (2, 3)], [(0, 2)]]
    """
    block_rounds = check_positive_int(block_rounds, name="block_rounds")
    if block_rounds == 1:
        return [list(rnd) for rnd in rounds]
    fused: list[list[tuple[int, int]]] = []
    current: list[tuple[int, int]] = []
    used: set[int] = set()
    merged = 0
    for rnd in rounds:
        indices = {idx for pair in rnd for idx in pair}
        if current and (merged >= block_rounds or used & indices):
            fused.append(current)
            current, used, merged = [], set(), 0
        current.extend(rnd)
        used |= indices
        merged += 1
    if current:
        fused.append(current)
    return fused


def group_pairs(
    round_pairs: list[tuple[int, int]], group_size: int
) -> list[list[tuple[int, int]]]:
    """Split one parallel round into hardware-sized groups.

    The FPGA's Jacobi rotation component starts at most ``group_size``
    (8 in the paper's build) independent rotations per 64-cycle issue
    window; successive groups of a round enter the datapath back to
    back.  ``group_size`` of 0 or None means "the whole round at once".
    """
    if not group_size:
        return [list(round_pairs)]
    group_size = check_positive_int(group_size, name="group_size")
    return [
        list(round_pairs[k : k + group_size])
        for k in range(0, len(round_pairs), group_size)
    ]
