"""Grouped (hardware-scheduled) modified Hestenes-Jacobi SVD.

The FPGA processes each cyclic round as groups of up to eight
*independent* rotations (Fig. 6's dashed box): all rotation parameters
in a group are generated from the covariance state as it stood when the
group issued, then the update kernels stream the affected columns and
covariances.  Because the pairs of a round are index-disjoint, plane
rotations of one pair never touch the norms or covariance of another
pair in the same round — so computing a whole round's parameters from
the pre-round snapshot and applying them jointly is *exactly* equal to
applying them one at a time (disjoint plane rotations commute).

That equivalence is what makes this implementation both the fidelity
model of the hardware schedule and the fast vectorized NumPy path: each
round becomes a handful of fancy-indexed array operations instead of
n/2 Python-level rotations.  Property tests in
``tests/core/test_blocked.py`` pin the sequential/blocked equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.hestenes import _complete_orthonormal
from repro.core.modified import TRACK_COLUMN_MODES, gram_matrix
from repro.core.ordering import cyclic_sweep
from repro.core.result import SVDResult
from repro.core.rotation import apply_round_columns
from repro.obs import noop_span, round_detail, span
from repro.obs.health import sweep_guard
from repro.util.numerics import sort_svd
from repro.util.validation import as_float_matrix, check_in_choices

__all__ = ["blocked_svd", "batch_rotation_params", "apply_round_gram"]


# Large-|rho| cutoff above which the closed-form tangent switches to
# its 1/(2 rho) asymptote: rho*rho must not overflow the working dtype.
_HUGE_RHO = {"float64": 1e150, "float32": 1e15}


def batch_rotation_params(
    norm_i: np.ndarray,
    norm_j: np.ndarray,
    cov: np.ndarray,
    *,
    rotation_impl: str = "textbook",
    dtype=np.float64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized rotation parameters for a batch of disjoint pairs.

    Returns ``(cos, sin, t, active)`` arrays; inactive entries
    (``cov == 0``) carry the identity rotation.  Matches
    :func:`repro.core.rotation.textbook_rotation` /
    :func:`repro.core.rotation.dataflow_rotation` elementwise.

    ``dtype`` selects the working precision (float64 default; float32
    for the mixed-precision fast path).  Every constant is materialized
    in that dtype so no intermediate silently promotes, and the huge-rho
    overflow guard scales with the dtype's range.
    """
    check_in_choices(rotation_impl, ("textbook", "dataflow"), name="rotation_impl")
    dtype = np.dtype(dtype)
    if dtype.name not in _HUGE_RHO:
        raise ValueError(
            f"dtype must be float32 or float64, got {dtype.name!r}"
        )
    one = dtype.type(1.0)
    zero = dtype.type(0.0)
    neg_one = dtype.type(-1.0)
    norm_i = np.asarray(norm_i, dtype=dtype)
    norm_j = np.asarray(norm_j, dtype=dtype)
    cov = np.asarray(cov, dtype=dtype)
    active = cov != 0.0
    # Hardware-style sign: the IEEE sign bit, never zero.
    sgn = np.where(np.signbit(cov), neg_one, one) * np.where(
        np.signbit(norm_j - norm_i), neg_one, one
    )
    d = norm_j - norm_i
    safe_cov = np.where(active, cov, one)
    if rotation_impl == "textbook":
        with np.errstate(over="ignore", divide="ignore"):
            rho = d / (2.0 * safe_cov)
            huge = np.abs(rho) > _HUGE_RHO[dtype.name]
            safe_rho = np.where(huge, one, rho)
            t_normal = np.where(np.signbit(rho), neg_one, one) / (
                np.abs(safe_rho) + np.sqrt(1.0 + safe_rho * safe_rho)
            )
            # rho*rho would overflow; asymptotically t -> 1/(2 rho).
            t = np.where(huge, 0.5 / rho, t_normal)
        c = 1.0 / np.sqrt(1.0 + t * t)
        s = c * t
    else:
        # Scale-invariant evaluation (see rotation.dataflow_rotation):
        # normalizing (d, cov) by their larger magnitude keeps the
        # squares from under/overflowing on denormal or huge entries.
        scale = np.maximum(np.abs(d), np.abs(safe_cov))
        scale = np.where(scale == 0.0, one, scale)
        dn = d / scale
        cn = safe_cov / scale
        abs_d = np.abs(dn)
        c2 = 2.0 * cn * cn
        four_c2 = 2.0 * c2
        r = np.sqrt(dn * dn + four_c2)
        denom = dn * dn + four_c2 + abs_d * r
        denom = np.where(denom == 0.0, one, denom)
        t = sgn * np.abs(2.0 * cn) / (abs_d + r)
        c = np.sqrt((dn * dn + c2 + abs_d * r) / denom)
        s = sgn * np.sqrt(c2 / denom)
    c = np.where(active, c, one)
    s = np.where(active, s, zero)
    t = np.where(active, t, zero)
    return c, s, t, active


def apply_round_gram(
    d: np.ndarray,
    idx_i: np.ndarray,
    idx_j: np.ndarray,
    c: np.ndarray,
    s: np.ndarray,
    t: np.ndarray,
    cov: np.ndarray,
) -> None:
    """Apply a round of disjoint plane rotations to the Gram matrix.

    ``D <- Jᵀ D J`` where J is the direct product of the round's 2x2
    rotations.  Column transform, then row transform, then the closed
    forms for each pair's own 2x2 block (norm shift by ``±t cov`` and
    exact-zero covariance, Algorithm 1 lines 15-17).
    """
    ni = d[idx_i, idx_i].copy()
    nj = d[idx_j, idx_j].copy()

    cols_i = d[:, idx_i].copy()
    cols_j = d[:, idx_j].copy()
    d[:, idx_i] = cols_i * c - cols_j * s
    d[:, idx_j] = cols_i * s + cols_j * c

    rows_i = d[idx_i, :].copy()
    rows_j = d[idx_j, :].copy()
    d[idx_i, :] = c[:, None] * rows_i - s[:, None] * rows_j
    d[idx_j, :] = s[:, None] * rows_i + c[:, None] * rows_j

    delta = t * cov
    d[idx_i, idx_i] = ni - delta
    d[idx_j, idx_j] = nj + delta
    d[idx_i, idx_j] = 0.0
    d[idx_j, idx_i] = 0.0


def blocked_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    rotation_impl: str = "textbook",
    track_columns: str = "first_sweep",
) -> SVDResult:
    """Round-parallel modified Hestenes-Jacobi SVD (cyclic ordering only).

    Numerically equivalent to :func:`repro.core.modified.modified_svd`
    with the cyclic ordering, but processes each tournament round as a
    single vectorized batch, exactly as the hardware issues it.  This is
    the implementation the accelerator simulator uses as its functional
    model and the fastest pure-NumPy path in the library.

    See :func:`repro.core.modified.modified_svd` for the meaning of the
    keyword arguments.
    """
    a = as_float_matrix(a, name="a")
    check_in_choices(track_columns, TRACK_COLUMN_MODES, name="track_columns")
    criterion = criterion or ConvergenceCriterion(max_sweeps=6, tol=None)

    m, n = a.shape
    d = gram_matrix(a)
    track_b = track_columns != "never"
    b = a.copy() if track_b else None
    v = np.eye(n) if compute_uv else None
    rounds = cyclic_sweep(n)

    trace = ConvergenceTrace(metric=criterion.metric)
    trace.record(0, measure(d, criterion.metric))

    converged = False
    sweeps_done = 0
    rspan = span if round_detail() else noop_span
    for sweep in range(1, criterion.max_sweeps + 1):
        update_cols = b is not None and (track_columns == "always" or sweep == 1)
        with span("core.sweep", method="blocked", sweep=sweep) as sweep_span:
            rotations = 0
            skipped = 0
            for round_index, round_pairs in enumerate(rounds):
                if not round_pairs:
                    continue
                with rspan("core.round", round=round_index, pairs=len(round_pairs)):
                    idx_i = np.fromiter((p[0] for p in round_pairs), dtype=np.intp)
                    idx_j = np.fromiter((p[1] for p in round_pairs), dtype=np.intp)
                    cov = d[idx_i, idx_j].copy()
                    ni = d[idx_i, idx_i]
                    nj = d[idx_j, idx_j]
                    c, s, t, active = batch_rotation_params(
                        ni, nj, cov, rotation_impl=rotation_impl
                    )
                    n_active = int(np.sum(active))
                    rotations += n_active
                    skipped += len(round_pairs) - n_active
                    if n_active == 0:
                        continue
                    apply_round_gram(d, idx_i, idx_j, c, s, t, cov)
                    if update_cols:
                        apply_round_columns(b, idx_i, idx_j, c, s)
                    if v is not None:
                        apply_round_columns(v, idx_i, idx_j, c, s)
            sweeps_done = sweep
            value = measure(d, criterion.metric)
            trace.record(sweep, value, rotations, skipped)
            sweep_guard("blocked", sweep, value)
            sweep_span.set_attrs(
                rotations=rotations, skipped=skipped, off_diagonal=value
            )
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    trace.converged = converged

    with span("core.finalize", m=m, n=n):
        diag = np.diag(d).copy()
        diag[diag < 0.0] = 0.0
        sigma_all = np.sqrt(diag)
        k = min(m, n)

        if not compute_uv:
            _, s_sorted, _ = sort_svd(None, sigma_all, None)
            return SVDResult(
                s=s_sorted[:k],
                sweeps=sweeps_done,
                trace=trace,
                method="blocked",
                converged=converged,
            )

        b_final = b if track_columns == "always" else a @ v
        u_full = np.zeros((m, n))
        s_max = float(np.max(sigma_all)) if sigma_all.size else 0.0
        cutoff = s_max * max(m, n) * np.finfo(np.float64).eps
        nonzero = sigma_all > cutoff
        u_full[:, nonzero] = b_final[:, nonzero] / sigma_all[nonzero]
        u, s_sorted, vt = sort_svd(u_full, sigma_all, v.T)
        u, s_sorted, vt = u[:, :k], s_sorted[:k], vt[:k, :]
        zero_cols = np.linalg.norm(u, axis=0) < 0.5
        if np.any(zero_cols):
            u = _complete_orthonormal(u, zero_cols)
        return SVDResult(
            s=s_sorted,
            u=u,
            vt=vt,
            sweeps=sweeps_done,
            trace=trace,
            method="blocked",
            converged=converged,
        )
