"""Batch decomposition of many matrices, optionally in parallel.

The paper's motivating applications are streams of decompositions —
video frames, sensor snapshots, iterative RPCA — and the natural
host-side parallelism is across matrices (each decomposition is
internally sequential over sweeps).  ``batch_svd`` runs a list of
matrices through any configured solver, optionally on a thread pool:
the heavy lifting is NumPy BLAS calls that release the GIL, so threads
give real speedups without pickling matrices to worker processes.

Determinism: results are identical (bit-for-bit) between serial and
parallel execution — each matrix's decomposition is independent, and
outputs are returned in input order.

The serving layer (:mod:`repro.serve.scheduler`) dispatches its
micro-batches through this module, reusing one long-lived pool across
batches via the ``pool`` hook instead of paying thread start-up per
batch.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor

from repro.core.result import SVDResult
from repro.core.svd import HestenesJacobiSVD
from repro.util.validation import check_positive_int

__all__ = ["batch_svd"]


def _run_in_context(ctx, solver: HestenesJacobiSVD, a, index: int) -> SVDResult:
    """Run one decomposition inside the submitting thread's context.

    Pool workers otherwise start from an empty :mod:`contextvars`
    context, which would detach the engines' spans from any tracer
    installed by the caller (e.g. the serving layer's ``serve.engine``
    span).
    """
    return ctx.run(_decompose_indexed, solver, a, index)


def _decompose_indexed(solver: HestenesJacobiSVD, a, index: int) -> SVDResult:
    """Run one decomposition, annotating any failure with its batch index.

    The first failing matrix (in input order, since results are
    consumed in order) surfaces as an exception of the original type
    whose message names the index and shape, chained to the original.
    """
    try:
        return solver.decompose(a)
    except Exception as exc:
        shape = getattr(a, "shape", None)
        msg = f"batch_svd: matrix {index} (shape {shape}) failed: {exc}"
        try:
            wrapped = type(exc)(msg)
        except Exception:
            wrapped = RuntimeError(msg)
        raise wrapped from exc


def batch_svd(
    matrices,
    *,
    workers: int = 1,
    solver: HestenesJacobiSVD | None = None,
    pool: ThreadPoolExecutor | None = None,
    **options,
) -> list[SVDResult]:
    """Decompose every matrix in *matrices*.

    Parameters
    ----------
    matrices : sequence of array_like
        The inputs; shapes may differ.
    workers : int
        Thread count; 1 (default) runs serially.  Capped at
        ``len(matrices)`` so a wide pool never spawns idle threads for
        a narrow batch.
    solver : HestenesJacobiSVD, optional
        Pre-configured solver; mutually exclusive with **options.
    pool : concurrent.futures.ThreadPoolExecutor, optional
        Existing executor to run on (left open afterwards), so stream
        schedulers can reuse one pool across many batches.  When given,
        dispatch always goes through this pool (its own width applies)
        and *workers* is ignored.
    **options
        Passed to :class:`repro.core.svd.HestenesJacobiSVD` when no
        solver is given (method, max_sweeps, tol, ...).

    Returns
    -------
    list of SVDResult, in input order.

    Raises
    ------
    Exception
        The first worker failure (in input order) is re-raised with the
        failing matrix index and shape prepended to the message and the
        original exception attached as ``__cause__``.

    Examples
    --------
    >>> import numpy as np
    >>> mats = [np.eye(3) * (i + 1) for i in range(4)]
    >>> [float(r.s[0]) for r in batch_svd(mats, workers=2)]
    [1.0, 2.0, 3.0, 4.0]
    """
    workers = check_positive_int(workers, name="workers")
    if solver is not None and options:
        raise TypeError("pass either a solver or options, not both")
    solver = solver or HestenesJacobiSVD(**options)
    matrices = list(matrices)
    if not matrices:
        return []
    workers = min(workers, len(matrices))
    if workers == 1 and pool is None:
        return [
            _decompose_indexed(solver, a, i) for i, a in enumerate(matrices)
        ]
    indices = range(len(matrices))
    # One context copy per matrix: ctx.run is not re-entrant, so
    # concurrent workers cannot share a single copy.
    contexts = [contextvars.copy_context() for _ in matrices]
    if pool is not None:
        return list(pool.map(_run_in_context, contexts,
                             [solver] * len(matrices), matrices, indices))
    with ThreadPoolExecutor(max_workers=workers) as owned:
        return list(owned.map(_run_in_context, contexts,
                              [solver] * len(matrices), matrices, indices))
