"""Batch decomposition of many matrices, optionally in parallel.

The paper's motivating applications are streams of decompositions —
video frames, sensor snapshots, iterative RPCA — and the natural
host-side parallelism is across matrices (each decomposition is
internally sequential over sweeps).  ``batch_svd`` runs a list of
matrices through any configured solver, optionally on a thread pool:
the heavy lifting is NumPy BLAS calls that release the GIL, so threads
give real speedups without pickling matrices to worker processes.

Determinism: results are identical (bit-for-bit) between serial and
parallel execution — each matrix's decomposition is independent, and
outputs are returned in input order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.result import SVDResult
from repro.core.svd import HestenesJacobiSVD
from repro.util.validation import check_positive_int

__all__ = ["batch_svd"]


def batch_svd(
    matrices,
    *,
    workers: int = 1,
    solver: HestenesJacobiSVD | None = None,
    **options,
) -> list[SVDResult]:
    """Decompose every matrix in *matrices*.

    Parameters
    ----------
    matrices : sequence of array_like
        The inputs; shapes may differ.
    workers : int
        Thread count; 1 (default) runs serially.
    solver : HestenesJacobiSVD, optional
        Pre-configured solver; mutually exclusive with **options.
    **options
        Passed to :class:`repro.core.svd.HestenesJacobiSVD` when no
        solver is given (method, max_sweeps, tol, ...).

    Returns
    -------
    list of SVDResult, in input order.

    Examples
    --------
    >>> import numpy as np
    >>> mats = [np.eye(3) * (i + 1) for i in range(4)]
    >>> [float(r.s[0]) for r in batch_svd(mats, workers=2)]
    [1.0, 2.0, 3.0, 4.0]
    """
    workers = check_positive_int(workers, name="workers")
    if solver is not None and options:
        raise TypeError("pass either a solver or options, not both")
    solver = solver or HestenesJacobiSVD(**options)
    matrices = list(matrices)
    if not matrices:
        return []
    if workers == 1 or len(matrices) == 1:
        return [solver.decompose(a) for a in matrices]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(solver.decompose, matrices))
