"""Convergence theory for Jacobi sweeps.

Grounds the paper's empirical "6 iterations suffice" (Section VI-C) in
the classical analysis:

* **Exact per-rotation reduction** — a Jacobi rotation on the symmetric
  covariance matrix ``D`` zeroes the pair entry and moves exactly its
  energy onto the diagonal:  ``off(D')^2 = off(D)^2 - 2 D_ij^2``
  (Frobenius norm is orthogonally invariant; only row/col i, j change;
  the 2x2 block becomes diagonal).  This is an *identity*, not a bound,
  and the property tests verify it to rounding.
* **Linear-phase bound** — picking pairs cyclically, each sweep
  annihilates every entry once; the classical worst-case estimate
  (Henrici / Forsythe-Henrici) gives per-sweep contraction of
  ``off^2`` by at least ``(1 - 2/N)^N`` with ``N = n(n-1)/2`` under
  the largest-element strategy, and empirically far faster for cyclic
  sweeps.  :func:`sweeps_upper_bound` exposes the conservative count.
* **Quadratic phase** — once ``off(D)`` falls below the smallest
  diagonal gap, cyclic Jacobi converges quadratically
  (``off_next <= off^2 / (2 * gap)``, van Kempen/Wilkinson);
  :func:`quadratic_threshold` and :func:`predict_trace` model the
  two-phase decay visible in Figs 10-11.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import as_square_matrix, check_positive_float, check_positive_int

__all__ = [
    "off_after_rotation",
    "sweeps_upper_bound",
    "quadratic_threshold",
    "predict_trace",
    "diagonal_gap",
]


def off_after_rotation(off_before: float, annihilated: float) -> float:
    """Exact off-norm after one symmetric Jacobi rotation.

    In the library's upper-triangle convention
    (:func:`repro.util.numerics.frobenius_off_diagonal`):
    ``off' = sqrt(off^2 - a^2)`` where *a* is the annihilated entry
    ``D_ij``.  (On the full symmetric matrix the drop is ``2 a^2``;
    the upper triangle holds half that energy.)  Clamped to
    ``[0, off_before]``: for off-norms below ~1e-154 the square
    denormalizes and the square/sqrt round trip can exceed the input
    by an ulp.
    """
    if annihilated == 0.0:
        return off_before
    value = off_before * off_before - annihilated * annihilated
    return min(math.sqrt(max(value, 0.0)), off_before)


def diagonal_gap(d) -> float:
    """Smallest gap between distinct eigenvalue clusters of diag(D).

    Used as the denominator of the quadratic-phase constant.  Returns
    +inf for a 1x1 matrix and 0.0 when two diagonal entries coincide.
    """
    d = as_square_matrix(d, name="d")
    diag = np.sort(np.diag(d))
    if diag.size < 2:
        return float("inf")
    return float(np.min(np.diff(diag)))


def sweeps_upper_bound(n: int, initial_off: float, target_off: float) -> int:
    """Conservative sweep count to bring off(D) from initial to target.

    Uses the linear-phase contraction ``off^2 <- off^2 (1 - 2/N)^N``
    per sweep (N = n(n-1)/2): the bound a largest-element strategy
    guarantees and cyclic sweeps meet in practice.  Returns 0 when the
    target is already met; the quadratic endgame makes the true count
    much smaller, so this is a *ceiling*, asserted (not matched) by the
    tests.
    """
    check_positive_int(n, name="n")
    check_positive_float(initial_off, name="initial_off")
    check_positive_float(target_off, name="target_off")
    if target_off >= initial_off:
        return 0
    if n < 2:
        return 0
    big_n = n * (n - 1) // 2
    per_sweep = big_n * math.log1p(-2.0 / big_n)  # log of the squared factor
    needed_log = 2.0 * (math.log(target_off) - math.log(initial_off))
    return max(0, math.ceil(needed_log / per_sweep))


def quadratic_threshold(d) -> float:
    """off(D) level below which quadratic convergence kicks in.

    The van Kempen condition: ``off(D) < gap / 4`` where gap is the
    minimal separation of the (current) diagonal.  Returns +inf for
    matrices with a single diagonal entry.
    """
    gap = diagonal_gap(d)
    return gap / 4.0


def predict_trace(
    initial_off: float,
    n: int,
    sweeps: int,
    *,
    gap: float | None = None,
    linear_factor: float | None = None,
) -> list[float]:
    """Two-phase model of the Fig. 10 decay curves.

    Linear phase: ``off <- off * linear_factor`` per sweep (default the
    Henrici worst-case ``(1 - 2/N)^{N/2}``); once below the quadratic
    threshold (``gap/4``; skipped when *gap* is None), switches to
    ``off <- off^2 / (2 gap)``.

    Returns ``sweeps + 1`` values starting at *initial_off*.  The
    measured curves must lie at or below this prediction — checked in
    tests/core/test_theory.py.
    """
    check_positive_int(n, name="n")
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    big_n = max(n * (n - 1) // 2, 1)
    if linear_factor is None:
        linear_factor = (1.0 - 2.0 / big_n) ** (big_n / 2.0) if big_n > 1 else 0.0
    trace = [float(initial_off)]
    off = float(initial_off)
    for _ in range(sweeps):
        if gap is not None and gap > 0 and off < gap / 4.0:
            off = off * off / (2.0 * gap)
        else:
            off = off * linear_factor
        trace.append(off)
    return trace
