"""Core algorithm package: the paper's modified Hestenes-Jacobi SVD.

Public surface:

* :func:`repro.core.svd.hestenes_svd` / :class:`HestenesJacobiSVD` —
  the user-facing API.
* :mod:`repro.core.rotation` — plane-rotation math (Algorithm 1 and the
  hardware dataflow equations 8-10).
* :mod:`repro.core.ordering` — cyclic/tournament pair scheduling (Fig 6).
* :mod:`repro.core.convergence` — metrics, criteria, traces (Figs 10-11).
"""

from repro.core.batch import batch_svd
from repro.core.block_jacobi import block_jacobi_svd
from repro.core.blocked import blocked_svd
from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace, measure
from repro.core.hestenes import FlopCounter, finalize_columns, reference_svd
from repro.core.modified import gram_matrix, modified_svd
from repro.core.preconditioned import householder_qr, preconditioned_svd
from repro.core.registry import (
    EngineSpec,
    engine_names,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from repro.core.symeig import jacobi_eigh
from repro.core.ordering import (
    all_pairs,
    cyclic_sweep,
    fuse_rounds,
    group_pairs,
    make_sweep,
    random_sweep,
    row_cyclic_sweep,
)
from repro.core.result import SVDResult
from repro.core.rotation import (
    RotationParams,
    apply_rotation_columns,
    apply_rotation_gram,
    apply_round_columns,
    dataflow_rotation,
    textbook_rotation,
    two_sided_angles,
)
from repro.core.svd import METHODS, HestenesJacobiSVD, hestenes_svd
from repro.core.vectorized import pair_dots, round_plan, vectorized_svd

__all__ = [
    "METHODS",
    "ConvergenceCriterion",
    "ConvergenceTrace",
    "EngineSpec",
    "FlopCounter",
    "HestenesJacobiSVD",
    "RotationParams",
    "SVDResult",
    "all_pairs",
    "apply_rotation_columns",
    "apply_rotation_gram",
    "apply_round_columns",
    "batch_svd",
    "block_jacobi_svd",
    "blocked_svd",
    "cyclic_sweep",
    "engine_names",
    "finalize_columns",
    "fuse_rounds",
    "jacobi_eigh",
    "dataflow_rotation",
    "gram_matrix",
    "group_pairs",
    "hestenes_svd",
    "pair_dots",
    "householder_qr",
    "preconditioned_svd",
    "make_sweep",
    "measure",
    "modified_svd",
    "random_sweep",
    "reference_svd",
    "register_engine",
    "resolve_engine",
    "round_plan",
    "row_cyclic_sweep",
    "textbook_rotation",
    "unregister_engine",
    "two_sided_angles",
    "vectorized_svd",
]
