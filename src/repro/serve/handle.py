"""The response handle and closed-server error shared by every façade.

:class:`ResponseHandle` is the future-like object returned by
``submit`` on the single-process :class:`repro.serve.server.SVDServer`
and the sharded :class:`repro.serve.shard.ShardedSVDServer` alike; the
asyncio façade bridges it onto the event loop.  It lives in its own
module so the shard tier's parent-side plumbing can depend on it
without importing the whole server.
"""

from __future__ import annotations

import threading

from repro.serve.request import ServeError
from repro.serve.result import SVDResponse

__all__ = ["ResponseHandle", "ServerClosed"]


class ServerClosed(ServeError):
    """Submission attempted on a closed server."""


class ResponseHandle:
    """Future-like handle for one submitted request."""

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self._event = threading.Event()
        self._response: SVDResponse | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def done(self) -> bool:
        """Whether the response is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> SVDResponse:
        """Block until the response arrives (raises on *timeout* expiry)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id}: no response within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def add_done_callback(self, fn) -> None:
        """Run ``fn(response)`` when the handle fulfils.

        Fires immediately (in the calling thread) when already done;
        otherwise runs in whichever thread fulfils the handle — keep
        callbacks short and never block in them.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self._response)

    def _fulfil(self, response: SVDResponse) -> None:
        with self._cb_lock:
            self._response = response
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(response)
