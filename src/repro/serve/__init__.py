"""Production serving layer: micro-batching SVD-as-a-service.

The paper's target workloads — robust PCA over video, LSI indexing,
streaming PCA — issue *streams* of decompositions against one shared
engine.  This package supplies the host-side machinery between
"library call" and "service": typed requests and responses, a bounded
admission queue with backpressure, a micro-batching scheduler that
coalesces compatible requests into worker-pool dispatches, an LRU
result cache keyed by content digests, retry/graceful-degradation
helpers, and a metrics registry — all tied together by
:class:`~repro.serve.server.SVDServer`.

Quickstart
----------
>>> import numpy as np
>>> from repro.serve import SVDServer
>>> with SVDServer() as srv:
...     handles = srv.submit_many([np.eye(2), np.eye(3)], compute_uv=False)
...     sizes = [len(h.result(timeout=30.0).result.s) for h in handles]
>>> sizes
[2, 3]
"""

from repro.serve.cache import CacheStats, ResultCache, result_nbytes
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.queue import QueueClosed, QueueFull, RequestQueue
from repro.serve.request import (
    ENGINES,
    DeadlineExceeded,
    ServeError,
    SVDRequest,
    make_request,
)
from repro.serve.result import SVDResponse
from repro.serve.retry import EngineExecutor, RetryPolicy, retry_call
from repro.serve.scheduler import Batch, BatchConfig, MicroBatcher
from repro.serve.server import ResponseHandle, ServerClosed, SVDServer
from repro.serve.shard import (  # noqa: E402 - must follow serve.server
    AsyncSVDServer,
    ShardedSVDServer,
    ShardSaturated,
)

__all__ = [
    "ENGINES",
    "AsyncSVDServer",
    "Batch",
    "BatchConfig",
    "CacheStats",
    "Counter",
    "DeadlineExceeded",
    "EngineExecutor",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MicroBatcher",
    "QueueClosed",
    "QueueFull",
    "RequestQueue",
    "ResponseHandle",
    "ResultCache",
    "RetryPolicy",
    "SVDRequest",
    "SVDResponse",
    "SVDServer",
    "ServeError",
    "ServerClosed",
    "ShardSaturated",
    "ShardedSVDServer",
    "result_nbytes",
    "retry_call",
    "make_request",
]
