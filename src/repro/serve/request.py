"""Typed requests for the SVD serving layer.

A :class:`SVDRequest` is one decomposition a client wants: the matrix,
the solver options, the engine to run on, and an optional deadline.
Requests are what flows through the queue and scheduler; they carry the
two keys the serving layer batches and caches by:

* :attr:`SVDRequest.batch_key` — shape + dtype + engine + options.
  Requests with equal batch keys are *compatible*: they can be coalesced
  into one micro-batch and dispatched through
  :func:`repro.core.batch.batch_svd` together.
* :attr:`SVDRequest.cache_key` — a content digest of the matrix bytes
  plus the batch key, so the result cache returns hits only for
  bit-identical inputs decomposed with identical options.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.registry import METHODS
from repro.util.hashing import digest
from repro.util.validation import as_float_matrix, check_in_choices

__all__ = ["ENGINES", "TASKS", "ServeError", "DeadlineExceeded", "SVDRequest",
           "make_request"]

#: Execution engines a request may target: ``"core"`` (the default
#: solver configuration), any engine registered in
#: :mod:`repro.core.registry` by name, or the cycle-modelled FPGA
#: accelerator ("hw").  Derived from the registry so serve's vocabulary
#: can never drift from the core dispatch.
ENGINES = ("core", *METHODS, "hw")

#: Request tasks: a full decomposition ("svd", the default), a rank-k
#: truncation ("topk_svd" — carries ``rank`` and optionally ``driver``
#: from :data:`repro.stream.drivers.TOPK_DRIVERS`), or a hosted-LSI
#: retrieval ("lsi_query" — carries ``index`` and ``top_k``; the
#: matrix payload is the term-space query vector).  The task and its
#: parameters travel inside :attr:`SVDRequest.options`, so batch keys,
#: cache keys and the shard wire format are unchanged — plain "svd"
#: requests build byte-identical requests to before.
TASKS = ("svd", "topk_svd", "lsi_query")


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class DeadlineExceeded(ServeError):
    """A request's deadline passed before its result was produced."""


@dataclass(frozen=True)
class SVDRequest:
    """One decomposition job flowing through the serving layer.

    Attributes
    ----------
    request_id : str
        Server-assigned identifier, unique within a server lifetime.
    matrix : numpy.ndarray
        Validated C-contiguous float64 input (via
        :func:`repro.util.validation.as_float_matrix`).
    options : tuple of (str, object)
        Solver options as a sorted tuple of pairs — hashable, so it can
        participate in the batch key.
    engine : str
        One of :data:`ENGINES` — ``"core"``, a registry engine name
        (``"reference"``, ``"blocked"``, ...) or ``"hw"``.
    submitted_at : float
        Clock reading when the request entered the server.
    deadline : float or None
        Absolute clock time after which the result is worthless; the
        scheduler drops expired requests and may degrade the engine
        under deadline pressure.
    trace_id : str or None
        Tracing correlation id assigned at submission when the server
        has a tracer; spans of this request's lifecycle carry it, and
        it is echoed on the response.
    """

    request_id: str
    matrix: np.ndarray = field(repr=False)
    options: tuple = ()
    engine: str = "core"
    submitted_at: float = 0.0
    deadline: float | None = None
    trace_id: str | None = field(default=None, compare=False)

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape, for grouping and reporting."""
        return self.matrix.shape

    @property
    def task(self) -> str:
        """The request task (:data:`TASKS`); "svd" unless set in options."""
        return dict(self.options).get("task", "svd")

    @property
    def batch_key(self) -> tuple:
        """Compatibility key: requests sharing it may share a micro-batch."""
        return (self.matrix.shape, self.matrix.dtype.str, self.engine,
                self.options)

    @property
    def cache_key(self) -> str:
        """Content digest keying the result cache (matrix + options + engine)."""
        return digest(self.matrix,
                      extra={"engine": self.engine, "options": self.options})

    def expired(self, now: float) -> bool:
        """Whether *now* is past the deadline (False when no deadline)."""
        return self.deadline is not None and now > self.deadline

    def remaining(self, now: float) -> float:
        """Seconds until the deadline (``inf`` when no deadline)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - now


def _validate_task_options(options: dict, engine: str, shape: tuple) -> dict:
    """Pop and validate the task-level options; return what to re-insert.

    Mutates *options* in place (removing the task keys so the
    remaining dict is pure solver vocabulary for
    :class:`~repro.core.svd.HestenesJacobiSVD`), and returns the
    canonical task entries to fold back into the request's options
    tuple.  Plain ``task="svd"`` contributes nothing, keeping legacy
    requests' batch and cache keys byte-identical.
    """
    from repro.util.validation import check_positive_int

    task = options.pop("task", "svd")
    rank = options.pop("rank", None)
    driver = options.pop("driver", None)
    index = options.pop("index", None)
    top_k = options.pop("top_k", None)
    check_in_choices(task, TASKS, name="task")
    out: dict = {}
    if task == "svd":
        for name, value in (("rank", rank), ("driver", driver),
                            ("index", index), ("top_k", top_k)):
            if value is not None:
                raise ValueError(
                    f"{name} is only valid with task='topk_svd' or "
                    f"task='lsi_query', not the default task='svd'"
                )
        return out
    if task == "topk_svd":
        if index is not None or top_k is not None:
            raise ValueError("index/top_k are lsi_query options, not topk_svd")
        if rank is None:
            raise ValueError("task='topk_svd' requires rank=")
        rank = check_positive_int(rank, name="rank")
        if rank > min(shape):
            raise ValueError(f"rank={rank} exceeds min(m, n)={min(shape)}")
        if engine == "hw":
            raise ValueError(
                "task='topk_svd' needs singular vectors; the hardware-"
                "faithful 'hw' engine emits singular values only — "
                "use 'core' or a registry engine"
            )
        if driver is not None:
            from repro.stream.drivers import TOPK_DRIVERS

            check_in_choices(driver, TOPK_DRIVERS, name="driver")
            out["driver"] = driver
        out["task"] = task
        out["rank"] = rank
        return out
    # task == "lsi_query"
    if rank is not None or driver is not None:
        raise ValueError("rank/driver are topk_svd options, not lsi_query")
    if engine != "core":
        raise ValueError(
            "task='lsi_query' resolves against an in-process index; "
            f"engine must be 'core', got {engine!r}"
        )
    if not index or not isinstance(index, str):
        raise ValueError("task='lsi_query' requires index=<registered name>")
    from repro.stream.serving import get_index, index_version

    hosted = get_index(index)  # raises KeyError naming registered indexes
    expected = hosted.term_space.shape[0]
    if int(np.prod(shape)) != expected:
        raise ValueError(
            f"lsi_query matrix must be the term-space query vector "
            f"({expected} entries for index {index!r}), got shape {shape}"
        )
    out["task"] = task
    out["index"] = index
    out["top_k"] = check_positive_int(top_k if top_k is not None else 3,
                                      name="top_k")
    # The index version keys the cache: add_documents bumps it, so
    # query results cached against the old state stop matching.
    out["index_version"] = index_version(index)
    return out


def make_request(
    matrix,
    *,
    request_id: str,
    engine: str = "core",
    now: float = 0.0,
    timeout: float | None = None,
    trace_id: str | None = None,
    **options,
) -> SVDRequest:
    """Validate inputs and build an :class:`SVDRequest`.

    Parameters
    ----------
    matrix : array_like
        The input matrix; coerced to C-contiguous float64.
    request_id : str
        Identifier assigned by the caller (normally the server).
    engine : str
        One of :data:`ENGINES`.
    now : float
        Current clock reading; stored as ``submitted_at`` and used to
        convert *timeout* into an absolute deadline.
    timeout : float or None
        Relative deadline in seconds; ``None`` means no deadline.
    trace_id : str or None
        Tracing correlation id (normally server-assigned).
    **options
        Solver options, validated eagerly by constructing a
        :class:`repro.core.svd.HestenesJacobiSVD` so typos fail at
        submission, not inside a worker thread.  An ``engine_opts``
        mapping is canonicalized to a sorted tuple of pairs so the
        request stays hashable for batching and caching.  A ``task``
        option (:data:`TASKS`) selects rank-k truncation
        (``task="topk_svd"`` with ``rank`` and an optional ``driver``)
        or hosted-index retrieval (``task="lsi_query"`` with ``index``
        and ``top_k``); task parameters are validated here and travel
        in the options tuple.
    """
    from repro.core.svd import HestenesJacobiSVD

    check_in_choices(engine, ENGINES, name="engine")
    arr = as_float_matrix(matrix, name="matrix")
    task_options = _validate_task_options(options, engine, arr.shape)
    HestenesJacobiSVD(**options)  # eager option-name validation
    if options.get("precision") is not None:
        # Validate the precision *value* and the target engine's support
        # here at submission: a worker-side failure would surface as a
        # degraded/error response long after the client could fix the
        # call, and the typed error names the fix.
        from repro.core.registry import resolve_engine
        from repro.core.vectorized import PRECISIONS

        check_in_choices(options["precision"], PRECISIONS, name="precision")
        if options["precision"] != "fp64":
            method = engine if engine in METHODS else options.get(
                "method", "blocked")
            supported = (
                engine != "hw"
                and method in METHODS
                and "precision" in resolve_engine(method).options_schema
            )
            if not supported:
                raise ValueError(
                    f"precision={options['precision']!r} is not supported "
                    f"by engine {engine!r} (method {method!r}); use "
                    f'engine/method "vectorized" for reduced precision'
                )
    if options.get("engine_opts"):
        # Validate contents against the engine that will actually run:
        # a registry engine named directly, or the core path's method.
        from repro.core.registry import resolve_engine

        method = engine if engine in METHODS else options.get("method",
                                                              "blocked")
        resolve_engine(method).validate_options(dict(options["engine_opts"]))
    if isinstance(options.get("engine_opts"), dict):
        options["engine_opts"] = tuple(sorted(options["engine_opts"].items()))
    options.update(task_options)
    if isinstance(matrix, np.ndarray) and np.shares_memory(arr, matrix):
        arr = arr.copy()  # snapshot: the caller may mutate theirs after submit
    arr.setflags(write=False)
    deadline = None if timeout is None else now + float(timeout)
    return SVDRequest(
        request_id=request_id,
        matrix=arr,
        options=tuple(sorted(options.items())),
        engine=engine,
        submitted_at=now,
        deadline=deadline,
        trace_id=trace_id,
    )
