"""Typed responses from the SVD serving layer.

A :class:`SVDResponse` pairs the decomposition outcome with the serving
metadata operators care about: where the time went (queue vs service),
whether the result came from cache, how large the dispatched batch was,
and which engine actually ran (the scheduler may degrade ``hw`` to
``core`` under failure or deadline pressure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SVDResult
from repro.serve.request import DeadlineExceeded, ServeError

__all__ = ["STATUSES", "SVDResponse"]

#: Terminal states a request can reach.
STATUSES = ("ok", "error", "timeout", "rejected")


@dataclass
class SVDResponse:
    """Outcome of one served decomposition.

    Attributes
    ----------
    request_id : str
        Matches the submitted request.
    status : str
        One of :data:`STATUSES`: ``"ok"`` (result present), ``"error"``
        (solver failure), ``"timeout"`` (deadline passed first) or
        ``"rejected"`` (backpressure refused admission).
    result : SVDResult or None
        The decomposition, present iff ``status == "ok"``.
    error : str or None
        Failure description for non-ok statuses.
    engine : str
        Engine that produced the result (after any degradation).
    cache_hit : bool
        Whether the result was served from the cache.
    batch_size : int
        Size of the micro-batch this request was dispatched in
        (0 for cache hits and rejected/expired requests).
    queued_s : float
        Time spent waiting between submission and dispatch.
    service_s : float
        Time spent inside the solver dispatch.
    total_s : float
        Submission-to-completion wall time.
    trace_id : str or None
        Correlation id of this request's spans when the server was
        constructed with a tracer (matches the ``trace_id`` attribute
        on the ``serve.request`` span tree), else None.
    shard : int or None
        Id of the worker shard that served the request, when it came
        through :class:`repro.serve.shard.ShardedSVDServer`; ``None``
        for single-process serving and front-cache hits.
    cpu_s : float
        Process CPU seconds attributed to this request (the batch's
        dispatch CPU split evenly across its requests); 0.0 for cache
        hits and failed requests.  The same value feeds the
        ``request_cpu_seconds`` metric family
        (:func:`repro.obs.prof.record_request_cpu`).
    """

    request_id: str
    status: str = "ok"
    result: SVDResult | None = None
    error: str | None = None
    engine: str = "core"
    cache_hit: bool = False
    batch_size: int = 0
    queued_s: float = 0.0
    service_s: float = 0.0
    total_s: float = 0.0
    trace_id: str | None = None
    shard: int | None = None
    cpu_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the request completed with a result."""
        return self.status == "ok"

    @property
    def health(self):
        """Numerical-health report of the underlying run, when present.

        ``None`` for non-ok responses and for results produced before
        health monitoring existed (e.g. deserialized caches).
        """
        return getattr(self.result, "health", None)

    def unwrap(self) -> SVDResult:
        """Return the result, raising a serving error for non-ok statuses.

        ``"timeout"`` raises :class:`repro.serve.request.DeadlineExceeded`;
        other failures raise :class:`repro.serve.request.ServeError`.
        """
        if self.ok:
            assert self.result is not None
            return self.result
        message = f"request {self.request_id} {self.status}: {self.error}"
        if self.status == "timeout":
            raise DeadlineExceeded(message)
        raise ServeError(message)
