"""Retry with backoff and graceful engine degradation.

Two resilience mechanisms for the serving layer:

* :func:`retry_call` — generic deterministic retry-with-exponential-
  backoff around any callable (clients use it around ``submit`` under
  the reject backpressure policy; the scheduler uses it around flaky
  dispatch).
* :class:`EngineExecutor` — maps a request's engine name to an actual
  batch dispatch, degrading gracefully: when the cycle-modelled ``hw``
  engine fails, or when the modelled FPGA latency would blow a batch's
  deadline budget, the batch falls back to the pure-NumPy ``core``
  solver path instead of failing or timing out.  The ``hw`` engine is
  hardware-faithful — singular values only, fixed sweep count, dataflow
  rotations — so a degraded batch runs the request's configured core
  options instead (and may additionally return U/Vᵀ).

Degradation chains: ``hw → core`` (accelerator failure or deadline
pressure) and ``vectorized → core`` (the round-parallel engine falls
back to the request's configured scalar solver on any failure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.batch import batch_svd
from repro.core.result import SVDResult
from repro.core.svd import HestenesJacobiSVD
from repro.obs.events import emit
from repro.obs.slo import observe as slo_observe
from repro.obs.tracer import span

__all__ = ["RetryPolicy", "retry_call", "EngineExecutor"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential-backoff schedule.

    Attributes
    ----------
    attempts : int
        Total tries, including the first (>= 1).
    backoff_s : float
        Sleep before the second try.
    multiplier : float
        Backoff growth factor per further retry.
    max_backoff_s : float
        Upper bound on any single sleep.
    """

    attempts: int = 3
    backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 1.0

    def delays(self) -> list[float]:
        """The sleeps between tries (length ``attempts - 1``)."""
        out = []
        delay = self.backoff_s
        for _ in range(max(self.attempts - 1, 0)):
            out.append(min(delay, self.max_backoff_s))
            delay *= self.multiplier
        return out


def retry_call(
    fn,
    *args,
    policy: RetryPolicy = RetryPolicy(),
    retry_on: tuple = (Exception,),
    sleep=None,
    **kwargs,
):
    """Call ``fn(*args, **kwargs)``, retrying per *policy*.

    Parameters
    ----------
    fn : callable
        The operation to attempt.
    policy : RetryPolicy
        Attempt count and backoff schedule.
    retry_on : tuple of exception types
        Only these are retried; anything else propagates immediately.
    sleep : callable, optional
        Injection point for tests; defaults to :func:`time.sleep`.

    Returns
    -------
    Whatever ``fn`` returns.  The final attempt's exception propagates
    when every try fails.
    """
    if sleep is None:
        import time

        sleep = time.sleep
    delays = policy.delays()
    for attempt, delay in enumerate([*delays, None]):
        try:
            return fn(*args, **kwargs)
        except retry_on as exc:
            if delay is None:
                emit("serve.retry.exhausted", attempts=attempt + 1,
                     error=type(exc).__name__)
                raise
            emit("serve.retry", attempt=attempt + 1, delay_s=delay,
                 error=type(exc).__name__)
            sleep(delay)
    raise AssertionError("unreachable")


def _hw_seconds(shape: tuple[int, int]) -> float:
    """Modelled FPGA latency for one decomposition of *shape*."""
    from repro.hw import estimate_seconds

    return estimate_seconds(shape[0], shape[1])


class EngineExecutor:
    """Dispatch micro-batches on a named engine with core fallback.

    Parameters
    ----------
    workers : int
        Thread-pool width handed to :func:`repro.core.batch.batch_svd`.
    pool : ThreadPoolExecutor, optional
        Long-lived pool to reuse across batches.
    allow_degradation : bool
        When True (default), ``hw`` batches fall back to ``core`` on
        accelerator failure or deadline pressure; when False, failures
        propagate.

    Notes
    -----
    The ``hw`` engine runs each matrix through
    :class:`repro.hw.architecture.HestenesJacobiAccelerator` and *charges*
    the modelled FPGA cycles; its functional output is the same blocked
    algorithm, so falling back is numerically transparent.
    """

    def __init__(self, workers: int = 4, pool=None,
                 allow_degradation: bool = True) -> None:
        self.workers = workers
        self.pool = pool
        self.allow_degradation = allow_degradation
        self.degradations = 0
        self._accelerator = None

    def _core_dispatch(self, matrices, options: dict) -> list[SVDResult]:
        solver = HestenesJacobiSVD(**options)
        return batch_svd(matrices, workers=self.workers, solver=solver,
                         pool=self.pool)

    def _method_dispatch(self, matrices, options: dict,
                         method: str) -> list[SVDResult]:
        """Dispatch on a specific registry engine, overriding ``method``."""
        solver = HestenesJacobiSVD(**{**options, "method": method})
        return batch_svd(matrices, workers=self.workers, solver=solver,
                         pool=self.pool)

    def _topk_dispatch(self, matrices, options: dict, rank: int,
                       driver: str, method: str | None = None) -> list[SVDResult]:
        """Dispatch a ``task="topk_svd"`` batch through the worker pool.

        The :class:`repro.stream.serving.TopkSolver` adapter exposes
        ``.decompose``, so the batch rides :func:`batch_svd` exactly
        like plain SVD traffic (same pool, same span propagation).
        """
        from repro.stream.serving import TopkSolver

        opts = options if method is None else {**options, "method": method}
        solver = TopkSolver(rank, driver=driver, options=opts)
        return batch_svd(matrices, workers=self.workers, solver=solver,
                         pool=self.pool)

    def _lsi_dispatch(self, matrices, options: dict) -> list[SVDResult]:
        """Resolve a ``task="lsi_query"`` batch against hosted indexes.

        Pure in-process retrieval — no decomposition, no degradation
        chain; a missing index or shape mismatch propagates as an
        error response.
        """
        from repro.stream.serving import resolve_lsi_query

        index = options["index"]
        top_k = options.get("top_k", 3)
        return [resolve_lsi_query(index, vec, top_k=top_k) for vec in matrices]

    def _hw_dispatch(self, matrices, options: dict) -> list[SVDResult]:
        from repro.hw import HestenesJacobiAccelerator

        if self._accelerator is None:
            self._accelerator = HestenesJacobiAccelerator()
        # The accelerator is hardware-faithful: singular values only
        # (the paper's FPGA emits Sig from the diagonal of D), so the
        # request's compute_uv option applies only on the core path.
        return [self._accelerator.decompose(a).result for a in matrices]

    def hw_latency_estimate(self, matrices) -> float:
        """Modelled total FPGA seconds to run *matrices* sequentially."""
        return sum(_hw_seconds(a.shape) for a in matrices)

    def dispatch(
        self,
        matrices,
        options: dict,
        engine: str = "core",
        deadline_budget_s: float | None = None,
    ) -> tuple[list[SVDResult], str]:
        """Run a compatible batch; returns ``(results, engine_used)``.

        A ``hw`` batch degrades to ``core`` (when allowed) if the
        modelled accelerator latency exceeds *deadline_budget_s* — the
        tightest remaining deadline in the batch — or if the
        accelerator raises.  A batch on any registry engine
        (``"reference"``, ``"vectorized"``, ...) degrades to ``core``
        (when allowed) if that engine raises — e.g. an option
        combination it rejects, such as ``block_rounds`` with an
        incompatible method override.
        """
        try:
            results, engine_used = self._dispatch_with_fallback(
                matrices, options, engine, deadline_budget_s
            )
        except Exception:
            slo_observe("serve.dispatch", good=False)
            raise
        slo_observe("serve.dispatch", good=engine_used == engine)
        return results, engine_used

    def _degrade(self, matrices, options: dict, engine: str,
                 reason: str, runner=None) -> list[SVDResult]:
        """Fall back to the core path, recording the transition.

        *runner* overrides the fallback computation (the topk path
        degrades to core-engine truncation, not to a full SVD); the
        default is the plain core dispatch.  The event and span
        inherit the ambient trace id (the dispatch runs inside the
        server's ``serve.engine`` span / event context), so a degraded
        request's narrative stays correlated end to end.
        """
        self.degradations += 1
        emit("serve.degrade", from_engine=engine, to_engine="core",
             reason=reason)
        with span("serve.degrade", from_engine=engine, to_engine="core",
                  reason=reason):
            if runner is not None:
                return runner()
            return self._core_dispatch(matrices, options)

    def _dispatch_with_fallback(self, matrices, options: dict, engine: str,
                                deadline_budget_s: float | None):
        options = dict(options)
        task = options.pop("task", "svd")
        if task == "lsi_query":
            return self._lsi_dispatch(matrices, options), engine
        if task == "topk_svd":
            rank = options.pop("rank")
            driver = options.pop("driver", "exact")
            options.pop("index_version", None)
            if engine in ("core", "hw"):  # hw is rejected at submission
                return self._topk_dispatch(matrices, options, rank,
                                           driver), "core"
            try:
                return self._topk_dispatch(matrices, options, rank, driver,
                                           method=engine), engine
            except Exception as exc:
                if not self.allow_degradation:
                    raise
                return self._degrade(
                    matrices, options, engine,
                    f"engine_error:{type(exc).__name__}",
                    runner=lambda: self._topk_dispatch(
                        matrices, options, rank, driver),
                ), "core"
        if engine == "core":
            return self._core_dispatch(matrices, options), "core"
        if engine != "hw":
            # Any engine registered with repro.core.registry, by name.
            try:
                return self._method_dispatch(matrices, options, engine), engine
            except Exception as exc:
                if not self.allow_degradation:
                    raise
                return self._degrade(
                    matrices, options, engine,
                    f"engine_error:{type(exc).__name__}",
                ), "core"
        if (
            self.allow_degradation
            and deadline_budget_s is not None
            and self.hw_latency_estimate(matrices) > deadline_budget_s
        ):
            return self._degrade(
                matrices, options, engine, "deadline_budget"
            ), "core"
        try:
            return self._hw_dispatch(matrices, options), "hw"
        except Exception as exc:
            if not self.allow_degradation:
                raise
            return self._degrade(
                matrices, options, engine,
                f"engine_error:{type(exc).__name__}",
            ), "core"
