"""Pickle-free shared-memory matrix transport for worker shards.

Matrices crossing the parent/worker process boundary never pass through
``pickle``: their raw float64 bytes are written into a
:mod:`multiprocessing.shared_memory` segment using a small **framed
message protocol**, and only a tiny control tuple (request id, frame
ticket, options) travels over the pipe.  The paper's analogue is the
accelerator's off-chip channel: matrix columns stream over a dedicated
wide bus while the control processor exchanges descriptors.

Frame format (one *message* = one or more arrays)::

    HEADER   (16 B)  magic "RSH1" | version | state | count | pad | total
    ARRAYHDR (64 B)  dtype string (16s) | ndim | pad | shape dims (5 x q)
    PAYLOAD          raw array bytes, each 16-byte aligned

The ``state`` byte implements the **explicit ownership handoff**:

* :data:`STATE_FREE`     — owned by the parent-side allocator,
* :data:`STATE_REQUEST`  — written by the parent, readable by the worker,
* :data:`STATE_RESPONSE` — rewritten in place by the worker, readable by
  the parent, which then releases the slot back to ``FREE``.

A process unpacking a message asserts the state it expects; a mismatch
raises :class:`TransportError` instead of silently reading a frame the
other side still owns.

Two carriers implement the protocol:

* :class:`SlotArena` — a fixed pool of equal-size slots in one shared
  segment (the common case: bounded, allocation-free steady state).
* one-off **overflow segments** (:func:`create_segment` /
  :func:`attach_segment`) for payloads larger than a slot.

Workers share the parent's ``resource_tracker`` (they are
multiprocessing children), so segment lifetimes follow a strict
create-register / unlink-unregister pairing — see the commentary above
:func:`create_segment` for why this sidesteps the well-known CPython
tracker-unlinks-attached-segments pitfall.
"""

from __future__ import annotations

import struct
import threading
from multiprocessing import shared_memory

import numpy as np

from repro.serve.request import ServeError

__all__ = [
    "MAGIC",
    "STATE_FREE",
    "STATE_REQUEST",
    "STATE_RESPONSE",
    "TransportError",
    "SlotArena",
    "attach_segment",
    "create_segment",
    "message_nbytes",
    "pack_message",
    "peek_state",
    "unpack_message",
]

MAGIC = b"RSH1"
VERSION = 1

STATE_FREE = 0
STATE_REQUEST = 1
STATE_RESPONSE = 2

_HEADER = struct.Struct("<4sBBBxq")       # magic, version, state, count, total
_ARRAYHDR = struct.Struct("<16sB7x5q")    # dtype, ndim, shape dims
_ALIGN = 16
_MAX_NDIM = 5
_STATE_OFFSET = 5                          # byte offset of `state` in HEADER


class TransportError(ServeError):
    """A shared-memory frame violated the framing/ownership protocol."""


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def message_nbytes(arrays) -> int:
    """Exact bytes a packed message of *arrays* occupies."""
    total = _HEADER.size + len(arrays) * _ARRAYHDR.size
    for a in arrays:
        total = _aligned(total) + a.nbytes
    return total


def pack_message(buf, offset: int, arrays, state: int) -> int:
    """Write *arrays* as one framed message at *offset*; returns nbytes.

    Array data is copied byte-for-byte (C order), so a round trip is
    bit-identical.  Raises :class:`TransportError` when an array has
    more than five dimensions (nothing in the serving layer does).
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    for a in arrays:
        if a.ndim > _MAX_NDIM:
            raise TransportError(f"array rank {a.ndim} exceeds {_MAX_NDIM}")
    total = message_nbytes(arrays)
    _HEADER.pack_into(buf, offset, MAGIC, VERSION, state, len(arrays), total)
    pos = offset + _HEADER.size
    for a in arrays:
        dims = list(a.shape) + [0] * (_MAX_NDIM - a.ndim)
        _ARRAYHDR.pack_into(buf, pos, a.dtype.str.encode("ascii"), a.ndim,
                            *dims)
        pos += _ARRAYHDR.size
    for a in arrays:
        pos = offset + _aligned(pos - offset)
        raw = a.tobytes()  # C-order bytes regardless of source layout
        buf[pos:pos + len(raw)] = raw
        pos += len(raw)
    return total


def peek_state(buf, offset: int) -> int:
    """Read a message's ownership state byte without unpacking it."""
    return buf[offset + _STATE_OFFSET]


def unpack_message(buf, offset: int, *, expect_state: int | None = None):
    """Read a framed message; returns ``(state, [read-only array views])``.

    The views alias the shared buffer — copy them (``np.array(v)``)
    before the slot is released or handed back to the other side.
    """
    magic, version, state, count, total = _HEADER.unpack_from(buf, offset)
    if magic != MAGIC:
        raise TransportError(f"bad frame magic {magic!r} at offset {offset}")
    if version != VERSION:
        raise TransportError(f"unsupported frame version {version}")
    if expect_state is not None and state != expect_state:
        raise TransportError(
            f"ownership handoff violated: expected state {expect_state}, "
            f"found {state} (frame owned by the other side?)"
        )
    headers = []
    pos = offset + _HEADER.size
    for _ in range(count):
        dtype_raw, ndim, *dims = _ARRAYHDR.unpack_from(buf, pos)
        dtype = np.dtype(dtype_raw.rstrip(b"\x00").decode("ascii"))
        headers.append((dtype, tuple(dims[:ndim])))
        pos += _ARRAYHDR.size
    arrays = []
    for dtype, shape in headers:
        pos = offset + _aligned(pos - offset)
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        view = np.frombuffer(buf, dtype=dtype, count=max(
            nbytes // dtype.itemsize, 0), offset=pos).reshape(shape)
        view.setflags(write=False)
        arrays.append(view)
        pos += nbytes
    if pos - offset > total:
        raise TransportError("frame payload overruns its declared total")
    return state, arrays


# ---- resource-tracker-safe attach/create --------------------------------
#
# Shard workers are multiprocessing children of the router process, so
# they SHARE the parent's resource_tracker (the tracker fd travels in
# the spawn preparation data) and its cache is a set of names.  That
# makes the safe discipline simple: the creating process registers a
# name once, attaches re-register idempotently, and exactly one
# eventual `unlink()` unregisters it — regardless of which process
# performs it.  Manually unregistering on attach (the usual workaround
# for CPython's tracker-unlinks-attached-segments pitfall with
# *unrelated* processes) would here remove the parent's own
# registration from the shared cache and make the final unlink
# double-unregister.  A worker death therefore never tears down the
# arena — the shared tracker only sweeps leftovers when the whole
# process tree exits, which doubles as a leak backstop for response
# segments orphaned mid-flight.


def create_segment(nbytes: int):
    """Create a fresh named segment of at least *nbytes*."""
    return shared_memory.SharedMemory(create=True, size=max(int(nbytes), 16))


def attach_segment(name: str):
    """Attach an existing segment by name.

    The attach-side registration is idempotent under the shared
    tracker (see the module comment above); cleanup ownership belongs
    to whichever side eventually calls :func:`unlink_segment`.
    """
    return shared_memory.SharedMemory(name=name)


def unlink_segment(shm) -> None:
    """Close and unlink *shm*, tolerating an already-unlinked name."""
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # a dying worker's tracker beat us to it
        pass


class SlotArena:
    """Fixed pool of equal-size message slots in one shared segment.

    The parent creates the arena and owns allocation (:meth:`acquire` /
    :meth:`release` — a simple lock-guarded free list; workers never
    allocate, they only flip a slot they were handed from ``REQUEST``
    to ``RESPONSE``).  Workers attach by name with :meth:`attach`.

    Parameters
    ----------
    slots : int
        Number of slots (bounds transport-level concurrency).
    slot_bytes : int
        Capacity of each slot; messages that do not fit go to overflow
        segments instead (see :func:`create_segment`).
    """

    def __init__(self, slots: int, slot_bytes: int, *, _shm=None,
                 _owner: bool = True) -> None:
        if slots < 1 or slot_bytes < _HEADER.size + _ARRAYHDR.size:
            raise ValueError("arena needs >=1 slot of useful size")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._owner = _owner
        self._shm = _shm if _shm is not None else shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_bytes)
        if _owner and _shm is None:
            for i in range(self.slots):
                self._shm.buf[self.offset(i) + _STATE_OFFSET] = STATE_FREE
        self._free = list(range(self.slots - 1, -1, -1))
        self._lock = threading.Lock()

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "SlotArena":
        """Worker-side view of an existing arena (no allocation rights)."""
        return cls(slots, slot_bytes, _shm=attach_segment(name), _owner=False)

    @property
    def name(self) -> str:
        """Shared-memory segment name workers attach by."""
        return self._shm.name

    @property
    def buf(self):
        """The raw shared buffer (memoryview)."""
        return self._shm.buf

    def offset(self, index: int) -> int:
        """Byte offset of slot *index*."""
        if not 0 <= index < self.slots:
            raise IndexError(f"slot {index} out of range 0..{self.slots - 1}")
        return index * self.slot_bytes

    def fits(self, nbytes: int) -> bool:
        """Whether a message of *nbytes* fits in one slot."""
        return nbytes <= self.slot_bytes

    def acquire(self) -> int | None:
        """Claim a free slot index (``None`` when the pool is exhausted)."""
        if not self._owner:
            raise TransportError("only the arena owner allocates slots")
        with self._lock:
            return self._free.pop() if self._free else None

    def release(self, index: int) -> None:
        """Return slot *index* to the pool and mark it ``FREE``."""
        if not self._owner:
            raise TransportError("only the arena owner releases slots")
        with self._lock:
            self._shm.buf[self.offset(index) + _STATE_OFFSET] = STATE_FREE
            self._free.append(index)

    @property
    def free_slots(self) -> int:
        """Currently unclaimed slot count."""
        with self._lock:
            return len(self._free)

    def close(self) -> None:
        """Detach (and unlink, when owner) the shared segment."""
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - tracker raced us
            pass
