"""Parent-side response assembly for the shard tier.

Turns a worker's ``("res", req_id, ticket, meta)`` reply back into a
full :class:`repro.serve.result.SVDResponse`: copies the singular
values (and U/Vᵀ) out of the shared-memory frame, reconstructs the
convergence trace and health report from their plain-dict wire forms,
and — when a tracer is installed — **stitches** the worker's spans
into the parent trace: every worker span is re-recorded with its
timestamps rebased by the shard's handshake clock offset, parent links
rebuilt, under a parent-side ``serve.shard.request`` root carrying the
request's trace id across the process boundary.
"""

from __future__ import annotations

import numpy as np

from repro.serve.shard import transport
from repro.serve.shard.state import Inflight, ShardState

__all__ = ["read_response_arrays", "build_response", "stitch_spans"]


def read_response_arrays(shard: ShardState, record: Inflight, ticket) -> list:
    """Copy response arrays out of shared memory and free the carriers."""
    if ticket is None:
        return []
    if ticket[0] == "slot":
        _, views = transport.unpack_message(
            shard.arena.buf, shard.arena.offset(ticket[1]),
            expect_state=transport.STATE_RESPONSE)
        arrays = [np.array(v) for v in views]
    else:
        seg = transport.attach_segment(ticket[1])
        try:
            _, views = transport.unpack_message(
                seg.buf, 0, expect_state=transport.STATE_RESPONSE)
            arrays = [np.array(v) for v in views]
            del views  # release buffer exports before closing the map
        finally:
            # When the response reused the request's own segment this
            # unlinks it; record.drop_segment() then just closes the
            # parent's original mapping.
            transport.unlink_segment(seg)
    if record.ticket and record.ticket[0] == "slot":
        shard.arena.release(record.ticket[1])
        record.ticket = None
    return arrays


def release_request_ticket(shard: ShardState, record: Inflight) -> None:
    """Return the request's arena slot, when one is still held."""
    if record.ticket and record.ticket[0] == "slot" and shard.arena is not None:
        shard.arena.release(record.ticket[1])
    record.ticket = None


def build_response(shard: ShardState, record: Inflight, ticket, meta,
                   *, clock, tracer=None):
    """Assemble the :class:`~repro.serve.result.SVDResponse` for a reply."""
    from repro.core.convergence import ConvergenceTrace
    from repro.core.result import SVDResult
    from repro.obs.health import HealthReport
    from repro.serve.result import SVDResponse

    request = record.request
    status = meta.get("status", "error")
    result = None
    if status == "ok":
        arrays = read_response_arrays(shard, record, ticket)
        s = arrays[0]
        u = vt = None
        if meta.get("uv") and len(arrays) == 3:
            u, vt = arrays[1], arrays[2]
        trace = None
        if meta.get("trace"):
            trace = ConvergenceTrace(**meta["trace"])
        health = None
        if meta.get("health"):
            health = HealthReport(**meta["health"])
        result = SVDResult(
            s=s, u=u, vt=vt, sweeps=meta.get("sweeps", 0), trace=trace,
            method=meta.get("method", ""),
            converged=meta.get("converged", True), health=health,
            precision=meta.get("precision", "fp64"),
            fp32_sweeps=int(meta.get("fp32_sweeps", 0)),
        )
    else:
        release_request_ticket(shard, record)
    if tracer is not None:
        stitch_spans(tracer, shard, record, meta)
    # Merge the worker's shipped events into the parent's event log,
    # stamped with the shard id — the parent-side narrative then covers
    # the whole request even after the worker process is gone.
    from repro.obs.events import replay

    replay(meta.get("events") or (), shard=shard.id)
    cpu_s = float(meta.get("cpu_s", 0.0))
    if status == "ok" and cpu_s > 0.0 and not meta.get("cache_hit"):
        # The worker measured the CPU in its own process; re-record it
        # into the parent registry so `repro stats` / the Prometheus
        # dump see cost attribution without scraping every worker.
        from repro.obs.prof import record_request_cpu

        record_request_cpu(
            engine=meta.get("engine", request.engine),
            shape=request.matrix.shape,
            precision=meta.get("precision", "fp64"),
            cpu_s=cpu_s,
        )
    return SVDResponse(
        request_id=request.request_id, status=status, result=result,
        error=meta.get("error"), engine=meta.get("engine", request.engine),
        cache_hit=bool(meta.get("cache_hit")),
        batch_size=int(meta.get("batch_size", 0)),
        queued_s=float(meta.get("queued_s", 0.0)),
        service_s=float(meta.get("service_s", 0.0)),
        total_s=clock() - request.submitted_at,
        trace_id=request.trace_id, shard=shard.id, cpu_s=cpu_s,
    )


def stitch_spans(tracer, shard: ShardState, record: Inflight, meta) -> None:
    """Rebase worker spans into the parent clock under one root span."""
    t_end = tracer.now()
    start = record.trace_start if record.trace_start is not None else t_end
    root = tracer.start_span(
        "serve.shard.request", trace_id=record.request.trace_id,
        start=start, shard=shard.id,
        request_id=record.request.request_id,
        engine=record.request.engine, status=meta.get("status"),
    )
    offset = shard.clock_offset
    id_map: dict[int, object] = {}
    for sp in sorted(meta.get("spans") or (), key=lambda d: d["start"]):
        parent = id_map.get(sp.get("parent_id"), root)
        attrs = dict(sp.get("attrs") or {})
        attrs.setdefault("shard", shard.id)
        new = tracer.add_span(
            sp["name"], start=sp["start"] + offset,
            end=sp["start"] + sp["duration"] + offset, parent=parent,
            trace_id=record.request.trace_id, **attrs)
        id_map[sp["span_id"]] = new
    root.end(t_end)
