"""Multi-process worker shards: the serving layer's PE array.

The paper scales Hestenes-Jacobi by replicating processing elements
behind a scheduler; this package is the software transplant of that
idea onto the serving layer.  It shards the single-process
:class:`repro.serve.server.SVDServer` across worker *processes* — each
one a full queue → micro-batcher → engine pipeline — connected by a
pickle-free shared-memory matrix transport, behind a router with
admission control and an optional :mod:`asyncio` front-end.

Modules
-------
:mod:`~repro.serve.shard.transport`
    Framed shared-memory protocol with explicit ownership handoff.
:mod:`~repro.serve.shard.worker`
    The child-process entry point hosting the inner pipeline.
:mod:`~repro.serve.shard.router`
    Keyed routing, least-loaded fallback, 429-style admission,
    worker-death detection, respawn, and zero-loss re-queueing.
:mod:`~repro.serve.shard.frontend`
    :class:`ShardedSVDServer` (blocking) and :class:`AsyncSVDServer`
    (asyncio) façades.
"""

from repro.serve.shard.frontend import (AsyncSVDServer, ShardedSVDServer,
                                        default_shards)
from repro.serve.shard.router import ShardRouter, ShardSaturated, shape_bucket
from repro.serve.shard.worker import WorkerConfig, worker_main

__all__ = [
    "AsyncSVDServer",
    "ShardRouter",
    "ShardSaturated",
    "ShardedSVDServer",
    "WorkerConfig",
    "default_shards",
    "shape_bucket",
    "worker_main",
]
