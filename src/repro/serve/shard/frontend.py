"""Front-ends over the shard tier: blocking façade and asyncio wrapper.

:class:`ShardedSVDServer` mirrors the single-process
:class:`repro.serve.server.SVDServer` API (``submit`` / ``submit_many``
/ ``result`` / ``stats`` / ``close``) but dispatches through a
:class:`repro.serve.shard.router.ShardRouter` to an array of worker
processes, so numpy-bound decompositions use every core instead of
sharing one GIL.  A front-side :class:`repro.serve.cache.ResultCache`
answers repeats without crossing the process boundary at all.

:class:`AsyncSVDServer` exposes the same service to ``asyncio`` code:
``submit`` returns an :class:`asyncio.Future` resolved on the event
loop (bridged from the worker callback via ``call_soon_threadsafe``),
and ``svd`` is the one-shot submit-and-await convenience.  Admission
failures (:class:`repro.serve.shard.router.ShardSaturated`, a 429-style
rejection) propagate as exceptions from ``submit`` in both façades,
with the already-fulfilled rejected handle attached as ``exc.handle``.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time

from repro.obs.slo import observe as slo_observe
from repro.serve.cache import ResultCache
from repro.serve.request import ServeError, make_request
from repro.serve.result import SVDResponse
from repro.serve.server import ResponseHandle, ServerClosed
from repro.serve.shard.router import ShardRouter

__all__ = ["ShardedSVDServer", "AsyncSVDServer", "default_shards"]


def default_shards() -> int:
    """Default worker count: one per core, capped at eight."""
    return max(1, min(os.cpu_count() or 1, 8))


class ShardedSVDServer:
    """Multi-process SVD service with the single-process server's API.

    Parameters
    ----------
    shards : int, optional
        Worker process count (default: :func:`default_shards`).
    max_inflight : int
        Per-shard admission limit; when every shard is full,
        :meth:`submit` raises
        :class:`~repro.serve.shard.router.ShardSaturated`.
    slot_bytes, arena_slots
        Shared-memory transport geometry per shard.
    max_batch, max_wait_s, workers, queue_size, worker_cache_bytes
        Inner pipeline settings, one copy per worker process
        (see :class:`repro.serve.server.SVDServer`).
    cache_bytes : int or None
        Front-side result-cache budget; ``None`` disables it.
    default_engine : str
        Engine used when a request does not choose.
    start_method : str, optional
        Worker start method (default ``"spawn"``).
    tracer : repro.obs.Tracer, optional
        Enables cross-process span stitching: worker-side spans are
        collected per trace id and rebased under a parent-side
        ``serve.shard.request`` root.
    trace_detail : str, optional
        Detail level of the tracer built *inside* each worker.
        Defaults to ``"sweep"`` whenever ``tracer`` is given, so
        worker spans always ship when the parent traces.
    **default_options
        Solver options applied to every request unless overridden.
    """

    def __init__(
        self,
        shards: int | None = None,
        *,
        max_inflight: int = 32,
        slot_bytes: int = 1 << 18,
        arena_slots: int | None = None,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        workers: int = 2,
        queue_size: int = 256,
        worker_cache_bytes: int | None = None,
        cache_bytes: int | None = 64 * 1024 * 1024,
        default_engine: str = "core",
        start_method: str | None = None,
        clock=time.monotonic,
        tracer=None,
        trace_detail: str | None = None,
        ping_interval_s: float = 0.25,
        max_attempts: int = 3,
        respawn: bool = True,
        **default_options,
    ) -> None:
        self.default_engine = default_engine
        self.default_options = default_options
        self.cache = ResultCache(cache_bytes) if cache_bytes else None
        self.tracer = tracer
        if tracer is not None and trace_detail is None:
            trace_detail = "sweep"  # workers must trace for stitching
        self._clock = clock
        self._ids = itertools.count()
        self._pending: dict[str, ResponseHandle] = {}
        self._pending_lock = threading.Lock()
        self._closed = False
        self.router = ShardRouter(
            shards if shards is not None else default_shards(),
            max_inflight=max_inflight,
            slot_bytes=slot_bytes,
            arena_slots=arena_slots,
            worker={
                "max_batch": max_batch,
                "max_wait_s": max_wait_s,
                "workers": workers,
                "queue_size": queue_size,
                "cache_bytes": worker_cache_bytes,
                "default_engine": default_engine,
                "default_options": dict(default_options),
                "trace_detail": trace_detail,
            },
            on_response=self._complete,
            start_method=start_method,
            clock=clock,
            tracer=tracer,
            ping_interval_s=ping_interval_s,
            max_attempts=max_attempts,
            respawn=respawn,
        )

    # ---- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        self.router.close()

    def __enter__(self) -> "ShardedSVDServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- submission -----------------------------------------------------

    def submit(self, matrix, *, engine: str | None = None,
               timeout: float | None = None, **options) -> ResponseHandle:
        """Submit one decomposition to the shard tier.

        Front-cache hits complete synchronously.  When every shard is
        at its admission limit the request is **rejected**: the handle
        is fulfilled with status ``"rejected"``, attached to the raised
        :class:`~repro.serve.shard.router.ShardSaturated` as
        ``exc.handle``, and the exception propagates (429 semantics —
        the caller decides whether to retry).
        """
        if self._closed:
            raise ServerClosed("sharded server is closed")
        if options.get("task") == "lsi_query":
            # LSI indexes are hosted in-process; shard workers are
            # separate processes and hold none.  topk_svd shards fine.
            raise ValueError(
                "task='lsi_query' is not available on the shard tier "
                "(indexes live in the serving process); use a single-"
                "process SVDServer, or task='topk_svd' for sharded "
                "truncation"
            )
        now = self._clock()
        request_id = f"req-{next(self._ids)}"
        trace_start = self.tracer.now() if self.tracer is not None else None
        merged = {**self.default_options, **options}
        request = make_request(
            matrix,
            request_id=request_id,
            engine=engine or self.default_engine,
            now=now,
            timeout=timeout,
            trace_id=request_id if self.tracer is not None else None,
            **merged,
        )
        handle = ResponseHandle(request.request_id)
        if self.cache is not None:
            cached = self.cache.get(request.cache_key)
            if cached is not None:
                handle._fulfil(SVDResponse(
                    request_id=request.request_id, status="ok", result=cached,
                    engine=request.engine, cache_hit=True,
                    total_s=self._clock() - now, trace_id=request.trace_id,
                ))
                slo_observe("serve.admission", good=True)
                slo_observe("serve.request", value=self._clock() - now)
                return handle
        with self._pending_lock:
            self._pending[request.request_id] = handle
        try:
            self.router.submit(request, handle, trace_start=trace_start)
        except ServeError as exc:
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
            slo_observe("serve.admission", good=False)
            handle._fulfil(SVDResponse(
                request_id=request.request_id, status="rejected",
                error=str(exc), engine=request.engine,
                trace_id=request.trace_id,
            ))
            exc.handle = handle
            raise
        slo_observe("serve.admission", good=True)
        return handle

    def submit_many(self, matrices, *, on_error: str = "raise",
                    **kwargs) -> list[ResponseHandle]:
        """Submit a sequence; returns handles in input order.

        ``on_error="continue"`` keeps going past rejections — the
        rejected positions still get (already fulfilled) handles, so
        ordering is preserved for partial failures.
        """
        if on_error not in ("raise", "continue"):
            raise ValueError(f"on_error must be 'raise' or 'continue', "
                             f"got {on_error!r}")
        handles: list[ResponseHandle] = []
        for matrix in matrices:
            try:
                handles.append(self.submit(matrix, **kwargs))
            except ServeError as exc:
                if on_error == "raise":
                    raise
                handles.append(_rejected_handle(exc, self._ids))
        return handles

    def result(self, handle: ResponseHandle | str,
               timeout: float | None = None) -> SVDResponse:
        """Wait for a response, by handle or by request id."""
        if isinstance(handle, str):
            with self._pending_lock:
                found = self._pending.get(handle)
            if found is None:
                raise KeyError(f"unknown or already-collected request "
                               f"{handle!r}")
            handle = found
        return handle.result(timeout)

    def _complete(self, request, response: SVDResponse) -> None:
        """Router hook: cache, untrack, and feed the parent-side SLO.

        The worker's own SLO engine dies with its process, so request
        latency must be judged here, on the parent's engine, from the
        parent's clock (``response.total_s``).
        """
        # `is not None`: an empty ResultCache is falsy (len == 0).
        if response.ok and response.result is not None and self.cache is not None:
            self.cache.put(request.cache_key, response.result)
        if response.ok:
            slo_observe("serve.request", value=response.total_s)
        else:
            slo_observe("serve.request", good=False)
        with self._pending_lock:
            self._pending.pop(request.request_id, None)

    # ---- observability --------------------------------------------------

    def stats(self) -> dict:
        """Topology + per-shard worker stats + front-cache accounting."""
        snap = self.router.stats()
        snap["cache"] = (self.cache.snapshot()
                         if self.cache is not None else None)
        with self._pending_lock:
            snap["pending"] = len(self._pending)
        return snap


def _rejected_handle(exc: ServeError, ids) -> ResponseHandle:
    """The fulfilled handle for a rejected submit (synthesized if needed)."""
    handle = getattr(exc, "handle", None)
    if handle is not None:
        return handle
    handle = ResponseHandle(f"req-rejected-{next(ids)}")
    handle._fulfil(SVDResponse(
        request_id=handle.request_id, status="rejected", error=str(exc)))
    return handle


class AsyncSVDServer:
    """``asyncio`` façade over a sharded (or any handle-based) server.

    Wraps an existing server when given one, otherwise builds a
    :class:`ShardedSVDServer` from the keyword arguments and owns its
    lifecycle.  Worker completions are bridged onto the event loop with
    ``loop.call_soon_threadsafe``, so awaiting coroutines never block a
    thread.

    Example
    -------
    >>> import asyncio, numpy as np
    >>> from repro.serve.shard import AsyncSVDServer
    >>> async def demo():
    ...     async with AsyncSVDServer(shards=1) as srv:
    ...         response = await srv.svd(np.eye(3) * 2.0, compute_uv=False)
    ...     return [float(v) for v in response.result.s]
    >>> asyncio.run(demo())
    [2.0, 2.0, 2.0]
    """

    def __init__(self, server=None, **kwargs) -> None:
        self._owns = server is None
        self.server = server if server is not None else ShardedSVDServer(
            **kwargs)

    def submit(self, matrix, *, engine: str | None = None,
               timeout: float | None = None, **options) -> asyncio.Future:
        """Submit from a running event loop; returns a Future[SVDResponse].

        Raises the same admission errors as the blocking ``submit``
        (e.g. :class:`~repro.serve.shard.router.ShardSaturated` with
        ``exc.handle`` set) — callers implement 429 retry policy.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        handle = self.server.submit(matrix, engine=engine, timeout=timeout,
                                    **options)
        handle.add_done_callback(
            lambda resp: loop.call_soon_threadsafe(_resolve, future, resp))
        return future

    async def svd(self, matrix, **kwargs) -> SVDResponse:
        """Submit one matrix and await its response."""
        return await self.submit(matrix, **kwargs)

    async def svd_many(self, matrices, **kwargs) -> list[SVDResponse]:
        """Submit a batch concurrently and await all responses in order."""
        return list(await asyncio.gather(
            *(self.submit(m, **kwargs) for m in matrices)))

    async def aclose(self) -> None:
        """Close the underlying server without blocking the loop."""
        if self._owns:
            await asyncio.get_running_loop().run_in_executor(
                None, self.server.close)

    async def __aenter__(self) -> "AsyncSVDServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def stats(self) -> dict:
        """Underlying server stats (cheap; safe to call from the loop)."""
        return self.server.stats()


def _resolve(future: asyncio.Future, response: SVDResponse) -> None:
    if not future.cancelled():
        future.set_result(response)
