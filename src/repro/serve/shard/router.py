"""Shard router: keyed dispatch, admission control, worker supervision.

The router is the host-side analogue of the paper's input scheduler: it
owns an array of independent worker shards (each a full copy of the
serving pipeline, see :mod:`repro.serve.shard.worker`) and decides
which shard each request streams to.

Routing policy
    Requests are keyed by ``(shape bucket, engine, options)`` — the
    same ingredients as the micro-batcher's batch key, with shapes
    bucketed to powers of two — and hashed to a *preferred* shard, so
    compatible traffic lands together and coalesces inside one shard's
    micro-batcher.  When the preferred shard is at its admission limit
    the router falls back to the least-loaded shard; when every shard
    is full it raises :class:`ShardSaturated` (a 429-style rejection
    layered on top of each worker's own queue backpressure).

Supervision
    A monitor thread pings every worker; a per-shard receiver thread
    consumes replies.  A dead worker (process exit, pipe EOF, broken
    send) is detected, its arena torn down, a replacement spawned, and
    every in-flight request **re-queued** through the same submit path
    — falling back to an in-process
    :class:`repro.serve.retry.EngineExecutor` dispatch (the existing
    retry/degradation path) when re-queueing is exhausted — so accepted
    requests are never lost.

Observability
    Per-shard labeled metric families (``shard_requests_total{shard=}``,
    ``shard_inflight{shard=}``, ``shard_roundtrip_s{shard=}``, death /
    respawn / requeue counters) are recorded into
    :func:`repro.obs.metrics.get_registry`, worker health reports are
    collected from ping replies, and — when a tracer is installed —
    worker spans are stitched into the parent trace
    (:func:`repro.serve.shard.responses.stitch_spans`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time

from repro.obs.events import emit
from repro.obs.metrics import get_registry
from repro.obs.recorder import trigger_dump
from repro.serve.request import ServeError, SVDRequest
from repro.serve.retry import EngineExecutor, RetryPolicy, retry_call
from repro.serve.shard import transport
from repro.serve.shard.responses import build_response, release_request_ticket
from repro.serve.shard.state import (Inflight, ShardSaturated, ShardState,
                                     shape_bucket)
from repro.serve.shard.worker import WorkerConfig, worker_main

__all__ = ["ShardSaturated", "shape_bucket", "ShardRouter"]

#: Handshake timeout for a freshly spawned worker.
_READY_TIMEOUT_S = 60.0


class ShardRouter:
    """Routes requests to worker shards and supervises their lifecycle.

    Parameters
    ----------
    shards : int
        Worker process count.
    max_inflight : int
        Per-shard admission limit; beyond it submissions raise
        :class:`~repro.serve.shard.state.ShardSaturated`.
    slot_bytes, arena_slots
        Shared-memory transport geometry per shard.
    worker : dict, optional
        Inner pipeline settings forwarded to each worker's
        :class:`~repro.serve.shard.worker.WorkerConfig` (max_batch,
        max_wait_s, workers, cache_bytes, default_engine,
        default_options, trace_detail).
    on_response : callable, optional
        ``fn(request, response)`` invoked before the handle is
        fulfilled (the front-end's cache/metrics hook).
    start_method : str, optional
        ``"spawn"`` (default: robust with a threaded parent) or
        ``"fork"`` (faster start; POSIX only).
    max_attempts : int
        Total shard submissions per request before the in-process
        degradation fallback runs it.
    respawn : bool
        Replace dead workers automatically (disable only in tests).
    """

    def __init__(
        self,
        shards: int,
        *,
        max_inflight: int = 32,
        slot_bytes: int = 1 << 18,
        arena_slots: int | None = None,
        worker: dict | None = None,
        on_response=None,
        start_method: str | None = None,
        clock=time.monotonic,
        tracer=None,
        ping_interval_s: float = 0.25,
        max_attempts: int = 3,
        respawn: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.max_inflight = int(max_inflight)
        self.slot_bytes = int(slot_bytes)
        self.arena_slots = int(arena_slots or min(2 * max_inflight, 64))
        self.worker_settings = dict(worker or {})
        self.on_response = on_response
        self.max_attempts = int(max_attempts)
        self.ping_interval_s = float(ping_interval_s)
        self.respawn = respawn
        self.tracer = tracer
        self._clock = clock
        self._ctx = multiprocessing.get_context(start_method or "spawn")
        self._topology_lock = threading.Lock()
        self._closing = False
        self._ping_seq = itertools.count()
        self._fallback = EngineExecutor(workers=2)
        self.shards = [ShardState(i) for i in range(int(shards))]
        for shard in self.shards:
            self._spawn(shard)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="svd-shard-monitor", daemon=True)
        self._monitor.start()

    @staticmethod
    def _m():
        return get_registry()

    # ---- worker lifecycle -----------------------------------------------

    def _spawn(self, shard: ShardState) -> None:
        """Start (or restart) the worker process behind *shard*."""
        shard.generation += 1
        generation = shard.generation
        arena = transport.SlotArena(self.arena_slots, self.slot_bytes)
        parent_conn, child_conn = self._ctx.Pipe()
        config = WorkerConfig(
            shard_id=shard.id,
            arena_name=arena.name,
            arena_slots=self.arena_slots,
            slot_bytes=self.slot_bytes,
            **self.worker_settings,
        )
        process = self._ctx.Process(
            target=worker_main, args=(child_conn, config),
            name=f"svd-shard-{shard.id}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT_S):
            arena.close()
            raise ServeError(f"shard {shard.id} worker failed to hand-shake")
        kind, pid, worker_now = parent_conn.recv()
        assert kind == "ready"
        shard.process = process
        shard.conn = parent_conn
        shard.arena = arena
        shard.pid = pid
        shard.clock_offset = time.perf_counter() - worker_now
        shard.alive = True
        self._m().gauge("shard_alive", labelnames=("shard",)).labels(
            **shard.labels()).set(1)
        receiver = threading.Thread(
            target=self._receive_loop, args=(shard, generation),
            name=f"svd-shard-recv-{shard.id}", daemon=True)
        receiver.start()

    def _receive_loop(self, shard: ShardState, generation: int) -> None:
        conn = shard.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "res":
                self._on_response(shard, msg[1], msg[2], msg[3])
            elif kind == "pong":
                shard.last_report = msg[2]
            elif kind == "bye":
                break
        if not self._closing:
            self._on_death(shard, generation)

    def _monitor_loop(self) -> None:
        while not self._closing:
            time.sleep(self.ping_interval_s)
            for shard in self.shards:
                if self._closing:
                    return
                if not shard.alive:
                    continue
                generation = shard.generation
                if shard.process is not None and not shard.process.is_alive():
                    self._on_death(shard, generation)
                    continue
                try:
                    shard.send(("ping", next(self._ping_seq)))
                except (OSError, ValueError):
                    self._on_death(shard, generation)

    def _on_death(self, shard: ShardState, generation: int) -> None:
        """Tear down a dead worker, respawn it, re-queue its requests."""
        with self._topology_lock:
            if self._closing or shard.generation != generation:
                return
            shard.alive = False
            labels = shard.labels()
            self._m().counter(
                "shard_deaths_total", labelnames=("shard",),
                help="worker processes lost per shard").labels(**labels).inc()
            self._m().gauge("shard_alive", labelnames=("shard",)).labels(
                **labels).set(0)
            with shard.lock:
                orphans = list(shard.inflight.values())
                shard.inflight.clear()
            self._set_inflight_gauge(shard, 0)
            if shard.arena is not None:
                shard.arena.close()   # owner unlink; dead worker can't reply
                shard.arena = None
            try:
                shard.conn.close()
            except OSError:
                pass
            orphan_traces = [r.request.trace_id or r.request.request_id
                             for r in orphans]
            emit("shard.death", shard=shard.id, generation=generation,
                 orphans=orphan_traces)
            if self.respawn:
                try:
                    self._spawn(shard)
                    self._m().counter(
                        "shard_respawns_total", labelnames=("shard",),
                        help="replacement workers started per shard",
                    ).labels(**labels).inc()
                    emit("shard.respawn", shard=shard.id,
                         generation=shard.generation, pid=shard.pid)
                except Exception:
                    shard.alive = False
        for record in orphans:
            record.drop_segment()
            self._requeue(record, from_shard=shard)
        trigger_dump("shard.death", shard=shard.id, generation=generation,
                     orphans=orphan_traces)

    def _requeue(self, record: Inflight, *, from_shard: ShardState) -> None:
        """Re-queue an orphaned request; degrade in-process when exhausted."""
        self._m().counter(
            "shard_requeues_total", labelnames=("shard",),
            help="in-flight requests re-queued after a worker death",
        ).labels(**from_shard.labels()).inc()
        emit("shard.requeue", shard=from_shard.id,
             trace_id=record.request.trace_id or record.request.request_id,
             request_id=record.request.request_id, attempts=record.attempts)
        if record.attempts < self.max_attempts:
            try:
                self.submit_record(record)
                return
            except ServeError:
                pass  # saturated or all shards down: degrade below
        self._degrade_inline(record)

    def _degrade_inline(self, record: Inflight) -> None:
        """Last-resort in-process dispatch via the existing retry path."""
        from repro.serve.result import SVDResponse

        request = record.request
        self._m().counter(
            "shard_inline_fallbacks_total",
            help="requests answered in-process after shard failures").inc()
        emit("shard.inline_fallback",
             trace_id=request.trace_id or request.request_id,
             request_id=request.request_id, engine=request.engine)
        now = self._clock()
        try:
            results, engine_used = retry_call(
                self._fallback.dispatch,
                [request.matrix],
                dict(request.options),
                engine=request.engine,
                deadline_budget_s=(request.remaining(now)
                                   if request.deadline is not None else None),
                policy=RetryPolicy(attempts=2, backoff_s=0.005),
            )
            response = SVDResponse(
                request_id=request.request_id, status="ok",
                result=results[0], engine=engine_used,
                total_s=self._clock() - request.submitted_at,
                trace_id=request.trace_id,
            )
        except Exception as exc:
            response = SVDResponse(
                request_id=request.request_id, status="error", error=str(exc),
                engine=request.engine,
                total_s=self._clock() - request.submitted_at,
                trace_id=request.trace_id,
            )
        self._deliver(record, response)

    # ---- submission -----------------------------------------------------

    def route(self, request: SVDRequest) -> ShardState:
        """Pick the shard for *request*; raises :class:`ShardSaturated`."""
        key = (shape_bucket(request.shape), request.engine, request.options)
        preferred = hash(key) % len(self.shards)
        candidates = sorted(
            (s for s in self.shards if s.alive),
            key=lambda s: (s.id != self.shards[preferred].id, s.depth),
        )
        for shard in candidates:
            if shard.depth < self.max_inflight:
                return shard
        emit("shard.reject",
             trace_id=request.trace_id or request.request_id,
             request_id=request.request_id, engine=request.engine)
        raise ShardSaturated(
            f"all {len(self.shards)} shard(s) at admission limit "
            f"({self.max_inflight} in flight each); retry later [429]"
        )

    def submit(self, request: SVDRequest, handle, *,
               trace_start: float | None = None) -> int:
        """Admit one request; returns the shard id it was sent to."""
        record = Inflight(request, handle, trace_start=trace_start)
        return self.submit_record(record)

    def submit_record(self, record: Inflight) -> int:
        """Admit (or re-admit) an :class:`Inflight` record."""
        last_error: Exception | None = None
        while record.attempts < self.max_attempts:
            record.attempts += 1
            shard = self.route(record.request)
            try:
                self._send(shard, record)
                return shard.id
            except (OSError, ValueError, transport.TransportError) as exc:
                last_error = exc
                self._on_death(shard, shard.generation)
        raise ShardSaturated(
            f"request {record.request.request_id} exhausted "
            f"{self.max_attempts} shard attempts: {last_error}"
        )

    def _send(self, shard: ShardState, record: Inflight) -> None:
        request = record.request
        arrays = [request.matrix]
        nbytes = transport.message_nbytes(arrays)
        ticket = None
        if shard.arena.fits(nbytes):
            slot = shard.arena.acquire()
            if slot is not None:
                transport.pack_message(shard.arena.buf,
                                       shard.arena.offset(slot), arrays,
                                       transport.STATE_REQUEST)
                ticket = ("slot", slot)
        if ticket is None:
            segment = transport.create_segment(nbytes)
            transport.pack_message(segment.buf, 0, arrays,
                                   transport.STATE_REQUEST)
            record.segment = segment
            ticket = ("seg", segment.name)
        record.ticket = ticket
        record.sent_at = self._clock()
        meta = {
            "engine": request.engine,
            "options": dict(request.options),
            "timeout": (request.remaining(record.sent_at)
                        if request.deadline is not None else None),
            "trace_id": request.trace_id,
        }
        with shard.lock:
            shard.inflight[request.request_id] = record
            depth = len(shard.inflight)
        self._set_inflight_gauge(shard, depth)
        try:
            shard.send(("req", request.request_id, ticket, meta))
        except (OSError, ValueError):
            with shard.lock:
                shard.inflight.pop(request.request_id, None)
            release_request_ticket(shard, record)
            record.drop_segment()
            raise
        self._m().counter(
            "shard_requests_total", labelnames=("shard",),
            help="requests admitted per shard",
        ).labels(**shard.labels()).inc()

    def _set_inflight_gauge(self, shard: ShardState, depth: int) -> None:
        self._m().gauge(
            "shard_inflight", labelnames=("shard",),
            help="requests currently owned by each shard",
        ).labels(**shard.labels()).set(depth)

    # ---- responses ------------------------------------------------------

    def _on_response(self, shard: ShardState, req_id: str, ticket,
                     meta) -> None:
        with shard.lock:
            record = shard.inflight.pop(req_id, None)
            depth = len(shard.inflight)
        self._set_inflight_gauge(shard, depth)
        if record is None:
            # Re-queued elsewhere after a presumed death; drop the late
            # duplicate.  Overflow segments are unlinked; a slot is left
            # to the (replaced) arena rather than risking a double-free.
            if ticket is not None and ticket[0] == "seg":
                transport.unlink_segment(transport.attach_segment(ticket[1]))
            return
        try:
            response = build_response(shard, record, ticket, meta,
                                      clock=self._clock, tracer=self.tracer)
        except Exception as exc:
            from repro.serve.result import SVDResponse

            response = SVDResponse(
                request_id=req_id, status="error",
                error=f"shard response unpack failed: {exc}",
                engine=record.request.engine, shard=shard.id,
                trace_id=record.request.trace_id,
            )
        record.drop_segment()
        labels = shard.labels()
        self._m().counter(
            "shard_responses_total", labelnames=("shard", "status"),
            help="responses returned per shard and status",
        ).labels(status=response.status, **labels).inc()
        self._m().histogram(
            "shard_roundtrip_s", labelnames=("shard",),
            help="submit-to-response wall time per shard",
        ).labels(**labels).observe(self._clock() - record.request.submitted_at)
        self._deliver(record, response)

    def _deliver(self, record: Inflight, response) -> None:
        if self.on_response is not None:
            try:
                self.on_response(record.request, response)
            except Exception:
                pass
        record.handle._fulfil(response)

    # ---- observability / lifecycle --------------------------------------

    def stats(self) -> dict:
        """Topology, depth, and forwarded worker health per shard.

        ``request_cpu_total_s`` sums the workers' cumulative
        request-attributed CPU seconds (shipped in ping replies), the
        shard tier's aggregate cost counter.
        """
        return {
            "shards": [
                {"id": s.id, "alive": s.alive, "pid": s.pid,
                 "generation": s.generation, "inflight": s.depth,
                 "max_inflight": self.max_inflight, "worker": s.last_report}
                for s in self.shards
            ],
            "request_cpu_total_s": sum(
                (s.last_report or {}).get("request_cpu_total_s", 0.0)
                for s in self.shards),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers, join threads, release shared memory."""
        with self._topology_lock:
            if self._closing:
                return
            self._closing = True
        for shard in self.shards:
            if shard.conn is not None:
                try:
                    shard.send(("stop",))
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            if shard.process is not None:
                shard.process.join(max(0.1, deadline - time.monotonic()))
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(5.0)
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:
                    pass
            if shard.arena is not None:
                shard.arena.close()
                shard.arena = None
            shard.alive = False
        if self._monitor.is_alive():
            self._monitor.join(timeout=self.ping_interval_s + 1.0)
