"""Shared state types of the shard tier: shards, in-flight records.

Split out of :mod:`repro.serve.shard.router` so the router module
holds only policy (routing, admission, supervision) while these plain
data holders carry the bookkeeping:

* :class:`ShardSaturated` — the 429-style admission rejection.
* :func:`shape_bucket` — the power-of-two shape key that gives
  compatible requests affinity to the same shard.
* :class:`Inflight` — one request currently owned by a worker, with
  everything needed to re-queue it losslessly after a worker death.
* :class:`ShardState` — one worker process's transport, connection,
  generation counter, and in-flight table.
"""

from __future__ import annotations

import threading

from repro.serve.request import ServeError, SVDRequest
from repro.serve.shard import transport

__all__ = ["ShardSaturated", "shape_bucket", "Inflight", "ShardState"]


class ShardSaturated(ServeError):
    """Every eligible shard is at its admission limit (HTTP-429 analogue)."""

    status_code = 429


def shape_bucket(shape) -> tuple[int, ...]:
    """Round each dimension up to a power of two for routing affinity."""
    return tuple(1 << max(int(d) - 1, 0).bit_length() for d in shape)


class Inflight:
    """Parent-side record of one request currently owned by a shard.

    Keeps the original :class:`~repro.serve.request.SVDRequest` (matrix
    included) so a worker death can re-queue the request through the
    normal submit path with nothing lost.
    """

    __slots__ = ("request", "handle", "attempts", "sent_at", "ticket",
                 "segment", "trace_start")

    def __init__(self, request: SVDRequest, handle, *, trace_start=None):
        self.request = request
        self.handle = handle
        self.attempts = 0
        self.sent_at = 0.0
        self.ticket = None
        self.segment = None          # parent-created overflow request segment
        self.trace_start = trace_start

    def drop_segment(self) -> None:
        """Unlink the overflow request segment, if one was used."""
        if self.segment is not None:
            transport.unlink_segment(self.segment)
            self.segment = None


class ShardState:
    """One worker process plus its transport and supervision state."""

    def __init__(self, shard_id: int) -> None:
        self.id = shard_id
        self.generation = 0
        self.process = None
        self.conn = None
        self.arena = None
        self.alive = False
        self.pid = None
        self.clock_offset = 0.0      # parent perf_counter - worker perf_counter
        self.inflight: dict[str, Inflight] = {}
        self.lock = threading.Lock()
        # Connection.send is not thread-safe; submissions, pings, and
        # stop all serialize through this lock.
        self.send_lock = threading.Lock()
        self.last_report: dict | None = None

    def send(self, message) -> None:
        """Thread-safe send on the control pipe."""
        with self.send_lock:
            self.conn.send(message)

    @property
    def depth(self) -> int:
        """Number of requests currently owned by this shard."""
        with self.lock:
            return len(self.inflight)

    def labels(self) -> dict:
        """Metric label set identifying this shard."""
        return {"shard": str(self.id)}
