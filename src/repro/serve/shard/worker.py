"""Shard worker: a child process hosting the serving pipeline.

Each :func:`worker_main` process is one software "processing element"
in the paper's sense: it owns a full copy of the existing
queue → micro-batcher → engine pipeline (a private
:class:`repro.serve.server.SVDServer`) and is fed matrices over the
pickle-free shared-memory transport of
:mod:`repro.serve.shard.transport`.  The control plane is a duplex
pipe carrying small tuples:

parent → worker
    ``("req", req_id, ticket, meta)`` — a matrix is ready in the slot /
    segment named by *ticket*; ``("ping", seq)`` — health probe;
    ``("stop",)`` — drain and exit.
worker → parent
    ``("ready", pid, clock_now)`` — handshake (the clock reading lets
    the parent rebase worker span timestamps); ``("res", req_id,
    ticket, meta)`` — response payload ready; ``("pong", seq, report)``
    — metrics/health snapshot.

Results are produced by the same engines with the same options, so the
served bytes are bit-identical to a direct
:func:`repro.core.svd.hestenes_svd` call — the transport only moves
them, it never re-encodes them.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.shard import transport

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a shard worker needs to build its inner pipeline.

    This object crosses the process boundary once, at spawn; it carries
    configuration only — matrix payloads use the shared-memory
    transport.
    """

    shard_id: int
    arena_name: str
    arena_slots: int
    slot_bytes: int
    max_batch: int = 8
    max_wait_s: float = 0.002
    workers: int = 2
    queue_size: int = 256
    cache_bytes: int | None = None
    default_engine: str = "core"
    default_options: dict = field(default_factory=dict)
    trace_detail: str | None = None


def _read_matrix(arena, ticket):
    """Copy the request matrix out of its slot/segment.

    Returns ``(matrix, response_carrier)`` where *response_carrier* is
    the still-open overflow segment to reuse for the response (``None``
    when the request came through an arena slot).
    """
    kind = ticket[0]
    if kind == "slot":
        _, arrays = transport.unpack_message(
            arena.buf, arena.offset(ticket[1]),
            expect_state=transport.STATE_REQUEST)
        return np.array(arrays[0]), None
    seg = transport.attach_segment(ticket[1])
    _, arrays = transport.unpack_message(
        seg.buf, 0, expect_state=transport.STATE_REQUEST)
    return np.array(arrays[0]), seg


def _write_response(arena, ticket, carrier, arrays):
    """Pack *arrays* for the parent; returns the response ticket.

    Prefers rewriting the request's own slot/segment in place (the
    ownership handoff flips its state to ``RESPONSE``); payloads that
    no longer fit move to a fresh disowned overflow segment the parent
    will unlink after reading.
    """
    nbytes = transport.message_nbytes(arrays)
    if ticket[0] == "slot" and arena.fits(nbytes):
        transport.pack_message(arena.buf, arena.offset(ticket[1]), arrays,
                               transport.STATE_RESPONSE)
        return ticket
    if carrier is not None and nbytes <= carrier.size:
        transport.pack_message(carrier.buf, 0, arrays,
                               transport.STATE_RESPONSE)
        return ("seg", carrier.name)
    # Fresh overflow segment: the parent unlinks it after reading (the
    # shared resource tracker keeps the registration until then).
    seg = transport.create_segment(nbytes)
    transport.pack_message(seg.buf, 0, arrays, transport.STATE_RESPONSE)
    name = seg.name
    seg.close()
    return ("seg", name)


def _trace_payload(result) -> dict | None:
    if result is None or result.trace is None:
        return None
    tr = result.trace
    return {
        "metric": tr.metric,
        "sweeps": list(tr.sweeps),
        "values": list(tr.values),
        "rotations": list(tr.rotations),
        "skipped": list(tr.skipped),
        "converged": bool(tr.converged),
    }


def _response_meta(response) -> dict:
    result = response.result
    health = getattr(result, "health", None)
    return {
        "status": response.status,
        "error": response.error,
        "engine": response.engine,
        "cache_hit": bool(response.cache_hit),
        "batch_size": int(response.batch_size),
        "queued_s": float(response.queued_s),
        "service_s": float(response.service_s),
        "cpu_s": float(getattr(response, "cpu_s", 0.0)),
        "sweeps": int(result.sweeps) if result is not None else 0,
        "method": result.method if result is not None else "",
        "converged": bool(result.converged) if result is not None else True,
        "precision": getattr(result, "precision", "fp64")
        if result is not None else "fp64",
        "fp32_sweeps": int(getattr(result, "fp32_sweeps", 0))
        if result is not None else 0,
        "trace": _trace_payload(result),
        "health": health.to_dict() if health is not None else None,
        "uv": bool(result is not None and result.u is not None),
    }


class _WorkerLoop:
    """State of one running shard worker (see :func:`worker_main`)."""

    def __init__(self, conn, config: WorkerConfig) -> None:
        from repro.obs import Tracer
        from repro.serve.server import SVDServer

        self.conn = conn
        self.config = config
        self.arena = transport.SlotArena.attach(
            config.arena_name, config.arena_slots, config.slot_bytes)
        self.tracer = (Tracer(detail=config.trace_detail)
                       if config.trace_detail else None)
        self.server = SVDServer(
            max_batch=config.max_batch,
            max_wait_s=config.max_wait_s,
            workers=config.workers,
            queue_size=config.queue_size,
            cache_bytes=config.cache_bytes,
            default_engine=config.default_engine,
            tracer=self.tracer,
            **dict(config.default_options),
        )
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: set[str] = set()

    def send(self, message) -> None:
        with self._send_lock:
            self.conn.send(message)

    # ---- request path ---------------------------------------------------

    def handle_request(self, req_id: str, ticket, meta: dict) -> None:
        try:
            matrix, carrier = _read_matrix(self.arena, ticket)
        except Exception as exc:
            self.send(("res", req_id, None,
                       {"status": "error",
                        "error": f"transport read failed: {exc}"}))
            return
        with self._pending_lock:
            self._pending.add(req_id)
        # The parent's trace id threads through the inner server so the
        # worker's spans AND events carry the parent's correlation id
        # (not the inner server's own request counter).
        trace_id = meta.get("trace_id") or req_id
        try:
            handle = self.server.submit(
                matrix,
                engine=meta.get("engine"),
                timeout=meta.get("timeout"),
                trace_id=trace_id,
                **dict(meta.get("options") or {}),
            )
        except Exception as exc:
            self._finish(req_id)
            if carrier is not None:
                carrier.close()
            self.send(("res", req_id, None,
                       {"status": "error", "error": str(exc)}))
            return
        handle.add_done_callback(
            lambda resp: self._reply(req_id, ticket, carrier, resp, trace_id))

    def _reply(self, req_id: str, ticket, carrier, response, trace_id) -> None:
        try:
            out_ticket = None
            if response.status == "ok":
                result = response.result
                arrays = [result.s]
                if result.u is not None:
                    arrays += [result.u, result.vt]
                out_ticket = _write_response(self.arena, ticket, carrier,
                                             arrays)
            meta = _response_meta(response)
            meta["spans"] = self._collect_spans(trace_id)
            meta["events"] = self._collect_events(trace_id)
            self.send(("res", req_id, out_ticket, meta))
        except Exception as exc:  # never strand the parent's handle
            try:
                self.send(("res", req_id, None,
                           {"status": "error",
                            "error": f"transport write failed: {exc}"}))
            except OSError:
                pass
        finally:
            if carrier is not None:
                carrier.close()
            self._finish(req_id)

    def _finish(self, req_id: str) -> None:
        with self._pending_lock:
            self._pending.discard(req_id)
            idle = not self._pending
        if idle and self.tracer is not None and len(self.tracer) > 512:
            self.tracer.clear()

    def _collect_spans(self, trace_id) -> list[dict]:
        if self.tracer is None or trace_id is None:
            return []
        return [sp.to_dict() for sp in self.tracer.spans
                if sp.trace_id == trace_id]

    def _collect_events(self, trace_id) -> list[dict]:
        """This request's events (by trace id), in pipe-safe wire form.

        The worker's own global event log captures the inner server's
        lifecycle/degradation events; shipping them back is how the
        narrative survives the process boundary.
        """
        from repro.obs.events import get_event_log

        log = get_event_log()
        if log is None or trace_id is None:
            return []
        return [ev.to_dict() for ev in log.find(trace_id=trace_id)]

    # ---- health path ----------------------------------------------------

    def report(self) -> dict:
        from repro.obs.metrics import get_registry
        from repro.obs.prof import request_cpu_total

        return {
            "pid": os.getpid(),
            "now": time.perf_counter(),
            "server": self.server.stats(),
            "registry": get_registry().snapshot(),
            "request_cpu_total_s": request_cpu_total(),
        }

    # ---- lifecycle ------------------------------------------------------

    def run(self) -> None:
        self.send(("ready", os.getpid(), time.perf_counter()))
        try:
            while True:
                try:
                    msg = self.conn.recv()
                except (EOFError, OSError):
                    return  # parent went away; nothing left to serve
                kind = msg[0]
                if kind == "req":
                    self.handle_request(msg[1], msg[2], msg[3])
                elif kind == "ping":
                    self.send(("pong", msg[1], self.report()))
                elif kind == "stop":
                    return
        finally:
            self.server.close()
            try:
                self.send(("bye",))
            except OSError:
                pass
            self.arena.close()
            self.conn.close()


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of a shard worker process (spawn- and fork-safe)."""
    _WorkerLoop(conn, config).run()
