"""Bounded, thread-safe submission queue with configurable backpressure.

The queue is the admission-control point of the serving layer: it is
FIFO, bounded, and applies one of two backpressure policies when full —

* ``policy="block"`` (default): :meth:`RequestQueue.put` waits until
  space frees up (optionally bounded by ``timeout``, after which it
  raises :class:`QueueFull`); smooths bursts at the cost of caller
  latency.
* ``policy="reject"``: :meth:`RequestQueue.put` raises
  :class:`QueueFull` immediately; keeps caller latency bounded and
  pushes retry logic to the client (see :mod:`repro.serve.retry`).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.serve.request import ServeError
from repro.util.validation import check_in_choices, check_positive_int

__all__ = ["POLICIES", "QueueFull", "QueueClosed", "RequestQueue"]

#: Backpressure policies for a full queue.
POLICIES = ("block", "reject")


class QueueFull(ServeError):
    """The queue refused an item (reject policy, or a blocked put timed out)."""


class QueueClosed(ServeError):
    """The queue is closed and accepts no further items."""


class RequestQueue:
    """Bounded FIFO queue for :class:`repro.serve.request.SVDRequest`.

    Parameters
    ----------
    maxsize : int
        Capacity bound; admission beyond it triggers backpressure.
    policy : str
        ``"block"`` or ``"reject"`` (:data:`POLICIES`).
    """

    def __init__(self, maxsize: int = 256, policy: str = "block") -> None:
        self.maxsize = check_positive_int(maxsize, name="maxsize")
        self.policy = check_in_choices(policy, POLICIES, name="policy")
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def put(self, item, timeout: float | None = None) -> None:
        """Enqueue *item*, applying the configured backpressure policy.

        Raises
        ------
        QueueFull
            Immediately under ``policy="reject"`` when full, or after
            *timeout* seconds of blocking under ``policy="block"``.
        QueueClosed
            When the queue no longer accepts work.
        """
        with self._not_full:
            if self._closed:
                raise QueueClosed("queue is closed")
            if len(self._items) >= self.maxsize:
                if self.policy == "reject":
                    raise QueueFull(
                        f"queue full ({self.maxsize} pending), rejecting"
                    )
                if not self._not_full.wait_for(
                    lambda: self._closed or len(self._items) < self.maxsize,
                    timeout=timeout,
                ):
                    raise QueueFull(
                        f"queue full ({self.maxsize} pending) after "
                        f"blocking {timeout}s"
                    )
                if self._closed:
                    raise QueueClosed("queue closed while blocked on put")
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: float | None = None):
        """Dequeue the oldest item, waiting up to *timeout* seconds.

        Returns ``None`` when the wait expires or the queue is closed
        and drained — the scheduler's idle-loop signal, not an error.
        """
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._closed or self._items, timeout=timeout
            ):
                return None
            if not self._items:
                return None  # closed and drained
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def get_nowait(self):
        """Dequeue without waiting; ``None`` when empty."""
        return self.get(timeout=0)

    def drain(self) -> list:
        """Remove and return every pending item (used at shutdown)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return items

    def close(self) -> None:
        """Stop accepting items and wake every blocked producer/consumer.

        Pending items remain readable via :meth:`get`/:meth:`drain` so
        shutdown can finish in-flight work.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
