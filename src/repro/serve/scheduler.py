"""Micro-batching scheduler policy for the serving layer.

The paper's accelerator (and its GPU/MKL comparators) amortise control
overhead across many decompositions; host-side, the same economics
apply to thread-pool dispatch.  :class:`MicroBatcher` implements the
batching *policy* as a pure, clock-free object so it can be tested
deterministically with a fake clock:

* requests are grouped by :attr:`~repro.serve.request.SVDRequest.batch_key`
  (shape + dtype + engine + options) — only compatible requests share a
  micro-batch;
* a group flushes as soon as it reaches ``max_batch`` requests
  (throughput bound), or once its oldest member has waited
  ``max_wait_s`` (latency bound, so sparse traffic is not starved);
* :meth:`MicroBatcher.flush_all` empties every group at shutdown.

The *mechanism* — the thread that moves requests from the queue through
this policy into :class:`repro.serve.retry.EngineExecutor` — lives in
:mod:`repro.serve.server`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.request import SVDRequest
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["BatchConfig", "Batch", "MicroBatcher"]


@dataclass(frozen=True)
class BatchConfig:
    """Tunables of the micro-batching policy.

    Attributes
    ----------
    max_batch : int
        Largest micro-batch the scheduler will coalesce.
    max_wait_s : float
        Latency bound: a request is dispatched no later than this long
        after entering the batcher, full batch or not.
    workers : int
        Thread-pool width used to execute each batch.
    """

    max_batch: int = 8
    max_wait_s: float = 0.002
    workers: int = 4

    def __post_init__(self) -> None:
        check_positive_int(self.max_batch, name="max_batch")
        check_positive_float(self.max_wait_s, name="max_wait_s")
        check_positive_int(self.workers, name="workers")


@dataclass
class Batch:
    """A flushed group of compatible requests, ready for dispatch."""

    key: tuple
    requests: list[SVDRequest]
    created_at: float
    flushed_at: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def matrices(self) -> list:
        """The request matrices, dispatch order."""
        return [r.matrix for r in self.requests]

    @property
    def engine(self) -> str:
        """Engine shared by every member (part of the batch key)."""
        return self.requests[0].engine

    @property
    def options(self) -> dict:
        """Solver options shared by every member, as a dict."""
        return dict(self.requests[0].options)

    def deadline_budget(self, now: float) -> float | None:
        """Tightest remaining deadline across members (None when none)."""
        remaining = [r.remaining(now) for r in self.requests
                     if r.deadline is not None]
        return min(remaining) if remaining else None


class MicroBatcher:
    """Pure batching policy: group compatible requests, bound the wait.

    Drive it with :meth:`add` and :meth:`poll`, passing explicit ``now``
    readings — the object never consults a real clock, which is what
    makes its behaviour reproducible under test.
    """

    def __init__(self, config: BatchConfig | None = None) -> None:
        self.config = config or BatchConfig()
        #: batch_key -> (oldest_arrival, [requests])
        self._groups: dict[tuple, tuple[float, list[SVDRequest]]] = {}

    def __len__(self) -> int:
        return sum(len(reqs) for _, reqs in self._groups.values())

    @property
    def pending_groups(self) -> int:
        """Number of distinct batch keys currently held."""
        return len(self._groups)

    def add(self, request: SVDRequest, now: float) -> Batch | None:
        """Admit *request*; returns a full batch if this filled one."""
        key = request.batch_key
        arrived, reqs = self._groups.get(key, (now, []))
        reqs.append(request)
        self._groups[key] = (arrived, reqs)
        if len(reqs) >= self.config.max_batch:
            return self._flush(key, now)
        return None

    def poll(self, now: float) -> list[Batch]:
        """Flush every group whose oldest member has waited max_wait_s."""
        due = [key for key, (arrived, _) in self._groups.items()
               if now - arrived >= self.config.max_wait_s]
        return [self._flush(key, now) for key in due]

    def next_deadline(self) -> float | None:
        """Clock time of the earliest pending max-wait expiry.

        The dispatch loop sleeps at most until this instant; ``None``
        when nothing is pending.
        """
        if not self._groups:
            return None
        oldest = min(arrived for arrived, _ in self._groups.values())
        return oldest + self.config.max_wait_s

    def flush_all(self, now: float) -> list[Batch]:
        """Empty every group immediately (shutdown drain)."""
        return [self._flush(key, now) for key in list(self._groups)]

    def _flush(self, key: tuple, now: float) -> Batch:
        arrived, reqs = self._groups.pop(key)
        return Batch(key=key, requests=reqs, created_at=arrived,
                     flushed_at=now)
