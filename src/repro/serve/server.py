"""The SVD server: queue + micro-batcher + worker pool + cache + metrics.

:class:`SVDServer` is the long-lived façade that turns the repository's
solvers into a service.  One background dispatch thread moves requests
from the bounded :class:`~repro.serve.queue.RequestQueue` through the
:class:`~repro.serve.scheduler.MicroBatcher` policy into a persistent
worker pool (via :func:`repro.core.batch.batch_svd`), consults the
:class:`~repro.serve.cache.ResultCache` before computing, and records
every serving metric along the way.

Results are bit-identical to calling :func:`repro.core.svd.hestenes_svd`
directly with the same options: batching only changes *when* a request
runs, never *how* — each matrix is still decomposed independently.

Example
-------
>>> import numpy as np
>>> from repro.serve import SVDServer
>>> with SVDServer(max_wait_s=0.001) as srv:
...     handle = srv.submit(np.eye(3) * 2.0, compute_uv=False)
...     response = handle.result(timeout=30.0)
>>> response.status
'ok'
>>> [float(v) for v in response.result.s]
[2.0, 2.0, 2.0]
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time

from repro.obs import use_tracer
from repro.obs.events import context as event_context
from repro.obs.events import emit
from repro.obs.metrics import get_registry
from repro.obs.prof import record_request_cpu
from repro.obs.recorder import trigger_dump
from repro.obs.slo import observe as slo_observe
from repro.serve.cache import ResultCache
from repro.serve.handle import ResponseHandle, ServerClosed
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import POLICIES, RequestQueue
from repro.serve.request import ServeError, SVDRequest, make_request
from repro.serve.result import SVDResponse
from repro.serve.retry import EngineExecutor
from repro.serve.scheduler import Batch, BatchConfig, MicroBatcher

__all__ = ["ServerClosed", "ResponseHandle", "SVDServer"]


def _note_done(req, status: str, **fields) -> None:
    """One request's terminal event + SLO judgement (latency or bad)."""
    emit("serve.request.done",
         trace_id=req.trace_id or req.request_id,
         request_id=req.request_id, engine=req.engine,
         status=status, **fields)
    if status == "ok":
        slo_observe("serve.request", value=fields.get("latency_s", 0.0))
    else:
        slo_observe("serve.request", good=False)


class SVDServer:
    """Long-lived micro-batching SVD service over the repo's solvers.

    Parameters
    ----------
    max_batch, max_wait_s, workers
        Micro-batching policy (:class:`repro.serve.scheduler.BatchConfig`).
    queue_size, backpressure
        Admission control (:class:`repro.serve.queue.RequestQueue`):
        ``backpressure="block"`` stalls producers when full,
        ``"reject"`` raises :class:`repro.serve.queue.QueueFull`.
    cache_bytes : int or None
        Result-cache budget; ``None`` disables caching.
    default_engine : str
        Engine used when a request does not choose: ``"core"``, any
        registry engine name, or ``"hw"``
        (:data:`repro.serve.request.ENGINES`).
    clock : callable
        Monotonic time source (injectable for tests).
    tracer : repro.obs.Tracer, optional
        When given, every request's lifecycle is recorded as a span
        tree — ``serve.request`` → ``serve.queue_wait`` /
        ``serve.batch`` → ``serve.engine`` → the engine's own
        ``core.sweep`` spans — correlated by a per-request trace id
        that is echoed on :class:`repro.serve.result.SVDResponse`.
    **default_options
        Solver options applied to every request unless overridden at
        :meth:`submit` (method, max_sweeps, tol, compute_uv, ...).
    """

    def __init__(
        self,
        *,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        workers: int = 4,
        queue_size: int = 1024,
        backpressure: str = "block",
        cache_bytes: int | None = 64 * 1024 * 1024,
        default_engine: str = "core",
        clock=time.monotonic,
        tracer=None,
        **default_options,
    ) -> None:
        self.config = BatchConfig(max_batch=max_batch, max_wait_s=max_wait_s,
                                  workers=workers)
        self.queue = RequestQueue(maxsize=queue_size, policy=backpressure)
        self.cache = ResultCache(cache_bytes) if cache_bytes else None
        self.metrics = MetricsRegistry()
        self.default_engine = default_engine
        self.default_options = default_options
        self._clock = clock
        self._ids = itertools.count()
        self._batcher = MicroBatcher(self.config)
        self._executor = EngineExecutor(workers=workers)
        self.tracer = tracer
        # Submit-time tracer timestamps, for the retroactive
        # serve.request / serve.queue_wait spans built at dispatch.
        self._trace_starts: dict[str, float] = {}
        self._pending: dict[str, ResponseHandle] = {}
        self._pending_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        # Expose this server's registry in the process-wide snapshot
        # (prefixed "serve.<key>") for `repro stats` / Prometheus.
        self._collector_name = get_registry().register_collector(
            "serve", self.metrics
        )
        self.start()

    # ---- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the dispatch thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._closed = False
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="svd-serve-dispatch",
                daemon=True,
            )
            self._thread.start()

    def close(self) -> None:
        """Stop accepting work, drain in-flight requests, join the thread."""
        if self._closed:
            return
        self._closed = True
        get_registry().unregister_collector(self._collector_name)
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    def __enter__(self) -> "SVDServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- submission -----------------------------------------------------

    def submit(self, matrix, *, engine: str | None = None,
               timeout: float | None = None, trace_id: str | None = None,
               **options) -> ResponseHandle:
        """Submit one decomposition; returns a :class:`ResponseHandle`.

        Cache hits complete synchronously (the handle is already done);
        misses are enqueued for micro-batched dispatch.  *timeout* sets
        the request deadline; expired requests resolve with status
        ``"timeout"``.  *trace_id* lets an upstream tier (the shard
        worker serving a routed request) thread its own correlation id
        through this server's spans and events instead of the local
        request id.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        now = self._clock()
        request_id = f"req-{next(self._ids)}"
        trace_start = self.tracer.now() if self.tracer is not None else None
        merged = {**self.default_options, **options}
        if trace_id is None and self.tracer is not None:
            trace_id = request_id
        request = make_request(
            matrix, request_id=request_id,
            engine=engine or self.default_engine,
            now=now, timeout=timeout, trace_id=trace_id, **merged,
        )
        emit("serve.request.submitted",
             trace_id=request.trace_id or request.request_id,
             request_id=request.request_id, engine=request.engine,
             task=request.task)
        self.metrics.counter(f"task_{request.task}_requests").inc()
        handle = ResponseHandle(request.request_id)
        if self.cache is not None:
            cached = self.cache.get(request.cache_key)
            if cached is not None:
                self.metrics.counter("cache_hits").inc()
                slo_observe("serve.admission", good=True)
                _note_done(request, "ok", cache_hit=True,
                           latency_s=self._clock() - now)
                if self.tracer is not None:
                    self.tracer.add_span(
                        "serve.request", start=trace_start,
                        end=self.tracer.now(), trace_id=request.trace_id,
                        request_id=request.request_id, engine=request.engine,
                        status="ok", cache_hit=True,
                    )
                handle._fulfil(SVDResponse(
                    request_id=request.request_id, status="ok", result=cached,
                    engine=request.engine, cache_hit=True,
                    total_s=self._clock() - now, trace_id=request.trace_id,
                ))
                self.metrics.counter("requests_completed").inc()
                return handle
            self.metrics.counter("cache_misses").inc()
        with self._pending_lock:
            self._pending[request.request_id] = handle
            if trace_start is not None:
                self._trace_starts[request.request_id] = trace_start
        try:
            self.queue.put(request)
        except ServeError as exc:
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
                self._trace_starts.pop(request.request_id, None)
            self.metrics.counter("requests_rejected").inc()
            emit("serve.request.rejected",
                 trace_id=request.trace_id or request.request_id,
                 request_id=request.request_id, engine=request.engine,
                 error=str(exc))
            slo_observe("serve.admission", good=False)
            if self.tracer is not None:
                self.tracer.add_span(
                    "serve.request", start=trace_start, end=self.tracer.now(),
                    trace_id=request.trace_id, request_id=request.request_id,
                    engine=request.engine, status="rejected",
                )
            handle._fulfil(SVDResponse(
                request_id=request.request_id, status="rejected",
                error=str(exc), engine=request.engine,
                trace_id=request.trace_id,
            ))
            exc.handle = handle
            raise
        self.metrics.counter("requests_submitted").inc()
        self.metrics.gauge("queue_depth").set(len(self.queue))
        slo_observe("serve.admission", good=True)
        return handle

    def submit_many(self, matrices, *, on_error: str = "raise",
                    **kwargs) -> list[ResponseHandle]:
        """Submit a sequence of matrices; returns handles in input order.

        ``on_error="continue"`` keeps submitting past rejections: the
        failed positions still receive handles (already fulfilled with
        status ``"rejected"``), so a partial failure never scrambles
        the input/handle correspondence.
        """
        if on_error not in ("raise", "continue"):
            raise ValueError(f"on_error must be 'raise' or 'continue', "
                             f"got {on_error!r}")
        handles: list[ResponseHandle] = []
        for a in matrices:
            try:
                handles.append(self.submit(a, **kwargs))
            except ServeError as exc:
                if on_error == "raise":
                    raise
                handle = getattr(exc, "handle", None)
                if handle is None:  # e.g. ServerClosed: no handle was made
                    handle = ResponseHandle(f"req-rejected-{next(self._ids)}")
                    handle._fulfil(SVDResponse(
                        request_id=handle.request_id, status="rejected",
                        error=str(exc), engine=self.default_engine,
                    ))
                handles.append(handle)
        return handles

    def result(self, handle: ResponseHandle | str,
               timeout: float | None = None) -> SVDResponse:
        """Wait for a response, by handle or by request id."""
        if isinstance(handle, str):
            with self._pending_lock:
                found = self._pending.get(handle)
            if found is None:
                raise KeyError(f"unknown or already-collected request {handle!r}")
            handle = found
        return handle.result(timeout)

    # ---- observability --------------------------------------------------

    def stats(self) -> dict:
        """Snapshot of metrics, cache accounting, and queue state."""
        snap = self.metrics.snapshot()
        snap["queue"] = {"depth": len(self.queue),
                         "maxsize": self.queue.maxsize,
                         "policy": self.queue.policy}
        snap["cache"] = (self.cache.snapshot()
                         if self.cache is not None else None)
        snap["degradations"] = self._executor.degradations
        return snap

    def render_stats(self) -> str:
        """Human-readable metrics report."""
        return self.metrics.render_text()

    # ---- dispatch loop --------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            closing = self.queue.closed
            deadline = self._batcher.next_deadline()
            # Event-driven wakeup: with no pending flush deadline the
            # loop parks on the queue's condition variable (signaled by
            # put/close) instead of polling — zero idle CPU burn.
            if deadline is None:
                wait = None
            else:
                wait = max(0.0, deadline - self._clock())
            request = self.queue.get(timeout=0.0 if closing else wait)
            now = self._clock()
            self.metrics.gauge("queue_depth").set(len(self.queue))
            if request is not None:
                full = self._batcher.add(request, now)
                if full is not None:
                    self._run_batch(full)
            for batch in self._batcher.poll(self._clock()):
                self._run_batch(batch)
            if closing and request is None:
                for batch in self._batcher.flush_all(self._clock()):
                    self._run_batch(batch)
                return

    def _pop_trace_start(self, request_id: str) -> float | None:
        with self._pending_lock:
            return self._trace_starts.pop(request_id, None)

    def _run_batch(self, batch: Batch) -> None:
        now = self._clock()
        tracer = self.tracer
        live: list[SVDRequest] = []
        for req in batch.requests:
            if req.expired(now):
                self.metrics.counter("requests_timeout").inc()
                if tracer is not None:
                    t_end = tracer.now()
                    t0 = self._pop_trace_start(req.request_id)
                    root = tracer.add_span(
                        "serve.request", start=t0 if t0 is not None else t_end,
                        end=t_end, trace_id=req.trace_id,
                        request_id=req.request_id, engine=req.engine,
                        status="timeout",
                    )
                    tracer.add_span(
                        "serve.queue_wait", start=root.start, end=t_end,
                        parent=root, trace_id=req.trace_id, expired=True,
                    )
                _note_done(req, "timeout")
                self._respond(req, SVDResponse(
                    request_id=req.request_id, status="timeout",
                    error=f"deadline passed before dispatch "
                          f"(waited {now - req.submitted_at:.4f}s)",
                    engine=req.engine, queued_s=now - req.submitted_at,
                    total_s=now - req.submitted_at, trace_id=req.trace_id))
            else:
                live.append(req)
        if not live:
            return
        self.metrics.counter("batches_dispatched").inc()
        self.metrics.histogram("batch_size").observe(len(live))
        if len(live) > 1:
            self.metrics.counter("coalesced_requests").inc(len(live) - 1)
        budget = Batch(batch.key, live, batch.created_at,
                       batch.flushed_at).deadline_budget(now)
        started = self._clock()
        roots: dict[str, object] = {}
        batch_span = engine_span = None
        if tracer is not None:
            # Request roots open retroactively at their submit-time
            # tracer timestamp; they were submitted in another thread,
            # so they are managed manually rather than via contextvars.
            t_dispatch = tracer.now()
            for req in live:
                t0 = self._pop_trace_start(req.request_id)
                root = tracer.start_span(
                    "serve.request", trace_id=req.trace_id,
                    start=t0 if t0 is not None else t_dispatch,
                    request_id=req.request_id, engine=req.engine,
                )
                tracer.add_span(
                    "serve.queue_wait", start=root.start, end=t_dispatch,
                    parent=root, trace_id=req.trace_id,
                )
                roots[req.request_id] = root
            batch_span = tracer.start_span(
                "serve.batch", parent=roots[live[0].request_id],
                trace_id=live[0].trace_id, batch_size=len(live),
                engine=live[0].engine,
            )
            engine_span = tracer.start_span(
                "serve.engine", parent=batch_span,
                trace_id=live[0].trace_id, engine=live[0].engine,
            )
        emit("serve.batch.dispatch",
             trace_id=live[0].trace_id or live[0].request_id,
             batch_size=len(live), engine=live[0].engine)
        # Correlates everything emitted inside the dispatch (degradation,
        # retries, engine health) with this batch's lead request.
        dispatch_ctx = event_context(
            trace_id=live[0].trace_id or live[0].request_id,
            engine=live[0].engine,
        )
        cpu_before = time.process_time()
        try:
            # Entering engine_span sets the ambient current-span, so
            # engine core.sweep spans (propagated into pool workers by
            # batch_svd) nest beneath it.
            with contextlib.ExitStack() as scopes:
                if tracer is not None:
                    scopes.enter_context(use_tracer(tracer))
                    scopes.enter_context(engine_span)
                scopes.enter_context(dispatch_ctx)
                results, engine_used = self._executor.dispatch(
                    [r.matrix for r in live], dict(live[0].options),
                    engine=live[0].engine, deadline_budget_s=budget,
                )
        except Exception as exc:
            finished = self._clock()
            if tracer is not None:
                batch_span.set_attrs(error=type(exc).__name__).end()
                for req in live:
                    roots[req.request_id].set_attrs(status="error").end()
            emit("serve.batch.error",
                 trace_id=live[0].trace_id or live[0].request_id,
                 batch_size=len(live), engine=live[0].engine,
                 error=type(exc).__name__, detail=str(exc))
            for req in live:
                self.metrics.counter("requests_failed").inc()
                _note_done(req, "error")
                self._respond(req, SVDResponse(
                    request_id=req.request_id, status="error", error=str(exc),
                    engine=req.engine, batch_size=len(live),
                    queued_s=started - req.submitted_at,
                    service_s=finished - started,
                    total_s=finished - req.submitted_at,
                    trace_id=req.trace_id))
            trigger_dump(
                "serve.batch.error", error=type(exc).__name__,
                detail=str(exc), engine=live[0].engine,
                request_ids=[req.request_id for req in live])
            return
        finished = self._clock()
        # Batch members share shape/options, so an even CPU split is fair.
        cpu_per_req = max(time.process_time() - cpu_before, 0.0) / len(live)
        wall_per_req = (finished - started) / len(live)
        precision = str(dict(live[0].options).get("precision", "fp64"))
        self.metrics.counter(f"engine_{engine_used}_requests").inc(len(live))
        if tracer is not None:
            engine_span.set_attr("engine_used", engine_used)
            if engine_used != live[0].engine:
                engine_span.set_attr("degraded", True)
            batch_span.set_attrs(engine_used=engine_used).end()
        for req, res in zip(live, results):
            if self.cache is not None:
                self.cache.put(req.cache_key, res)
            self.metrics.counter("requests_completed").inc()
            self.metrics.histogram("latency_s").observe(
                finished - req.submitted_at)
            record_request_cpu(
                engine=engine_used, shape=req.matrix.shape,
                precision=precision, cpu_s=cpu_per_req,
                wall_s=wall_per_req)
            _note_done(req, "ok", engine_used=engine_used,
                       batch_size=len(live),
                       latency_s=finished - req.submitted_at)
            if tracer is not None:
                roots[req.request_id].set_attrs(
                    status="ok", batch_size=len(live),
                    engine_used=engine_used,
                ).end()
            self._respond(req, SVDResponse(
                request_id=req.request_id, status="ok", result=res,
                engine=engine_used, batch_size=len(live),
                queued_s=started - req.submitted_at,
                service_s=finished - started,
                total_s=finished - req.submitted_at,
                trace_id=req.trace_id, cpu_s=cpu_per_req))

    def _respond(self, request: SVDRequest, response: SVDResponse) -> None:
        with self._pending_lock:
            handle = self._pending.pop(request.request_id, None)
        if handle is not None:
            handle._fulfil(response)
