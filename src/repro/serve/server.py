"""The SVD server: queue + micro-batcher + worker pool + cache + metrics.

:class:`SVDServer` is the long-lived façade that turns the repository's
solvers into a service.  One background dispatch thread moves requests
from the bounded :class:`~repro.serve.queue.RequestQueue` through the
:class:`~repro.serve.scheduler.MicroBatcher` policy into a persistent
worker pool (via :func:`repro.core.batch.batch_svd`), consults the
:class:`~repro.serve.cache.ResultCache` before computing, and records
every serving metric along the way.

Results are bit-identical to calling :func:`repro.core.svd.hestenes_svd`
directly with the same options: batching only changes *when* a request
runs, never *how* — each matrix is still decomposed independently.

Example
-------
>>> import numpy as np
>>> from repro.serve import SVDServer
>>> with SVDServer(max_wait_s=0.001) as srv:
...     handle = srv.submit(np.eye(3) * 2.0, compute_uv=False)
...     response = handle.result(timeout=30.0)
>>> response.status
'ok'
>>> [float(v) for v in response.result.s]
[2.0, 2.0, 2.0]
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.serve.cache import ResultCache
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import POLICIES, RequestQueue
from repro.serve.request import ServeError, SVDRequest, make_request
from repro.serve.result import SVDResponse
from repro.serve.retry import EngineExecutor
from repro.serve.scheduler import Batch, BatchConfig, MicroBatcher

__all__ = ["ServerClosed", "ResponseHandle", "SVDServer"]

#: Idle poll granularity of the dispatch loop when no flush is pending.
_IDLE_WAIT_S = 0.01


class ServerClosed(ServeError):
    """Submission attempted on a closed server."""


class ResponseHandle:
    """Future-like handle for one submitted request."""

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self._event = threading.Event()
        self._response: SVDResponse | None = None

    def done(self) -> bool:
        """Whether the response is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> SVDResponse:
        """Block until the response arrives (raises on *timeout* expiry)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id}: no response within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _fulfil(self, response: SVDResponse) -> None:
        self._response = response
        self._event.set()


class SVDServer:
    """Long-lived micro-batching SVD service over the repo's solvers.

    Parameters
    ----------
    max_batch, max_wait_s, workers
        Micro-batching policy (:class:`repro.serve.scheduler.BatchConfig`).
    queue_size, backpressure
        Admission control (:class:`repro.serve.queue.RequestQueue`):
        ``backpressure="block"`` stalls producers when full,
        ``"reject"`` raises :class:`repro.serve.queue.QueueFull`.
    cache_bytes : int or None
        Result-cache budget; ``None`` disables caching.
    default_engine : str
        Engine used when a request does not choose: ``"core"``,
        ``"vectorized"`` or ``"hw"``.
    clock : callable
        Monotonic time source (injectable for tests).
    **default_options
        Solver options applied to every request unless overridden at
        :meth:`submit` (method, max_sweeps, tol, compute_uv, ...).
    """

    def __init__(
        self,
        *,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        workers: int = 4,
        queue_size: int = 1024,
        backpressure: str = "block",
        cache_bytes: int | None = 64 * 1024 * 1024,
        default_engine: str = "core",
        clock=time.monotonic,
        **default_options,
    ) -> None:
        self.config = BatchConfig(max_batch=max_batch, max_wait_s=max_wait_s,
                                  workers=workers)
        self.queue = RequestQueue(maxsize=queue_size, policy=backpressure)
        self.cache = ResultCache(cache_bytes) if cache_bytes else None
        self.metrics = MetricsRegistry()
        self.default_engine = default_engine
        self.default_options = default_options
        self._clock = clock
        self._ids = itertools.count()
        self._batcher = MicroBatcher(self.config)
        self._executor = EngineExecutor(workers=workers)
        self._pending: dict[str, ResponseHandle] = {}
        self._pending_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        self.start()

    # ---- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the dispatch thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._closed = False
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="svd-serve-dispatch",
                daemon=True,
            )
            self._thread.start()

    def close(self) -> None:
        """Stop accepting work, drain in-flight requests, join the thread."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    def __enter__(self) -> "SVDServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- submission -----------------------------------------------------

    def submit(self, matrix, *, engine: str | None = None,
               timeout: float | None = None, **options) -> ResponseHandle:
        """Submit one decomposition; returns a :class:`ResponseHandle`.

        Cache hits complete synchronously (the handle is already done);
        misses are enqueued for micro-batched dispatch.  *timeout* sets
        the request deadline; expired requests resolve with status
        ``"timeout"``.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        now = self._clock()
        merged = {**self.default_options, **options}
        request = make_request(
            matrix,
            request_id=f"req-{next(self._ids)}",
            engine=engine or self.default_engine,
            now=now,
            timeout=timeout,
            **merged,
        )
        handle = ResponseHandle(request.request_id)
        if self.cache is not None:
            cached = self.cache.get(request.cache_key)
            if cached is not None:
                self.metrics.counter("cache_hits").inc()
                handle._fulfil(SVDResponse(
                    request_id=request.request_id, status="ok", result=cached,
                    engine=request.engine, cache_hit=True,
                    total_s=self._clock() - now,
                ))
                self.metrics.counter("requests_completed").inc()
                return handle
            self.metrics.counter("cache_misses").inc()
        with self._pending_lock:
            self._pending[request.request_id] = handle
        try:
            self.queue.put(request)
        except ServeError as exc:
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
            self.metrics.counter("requests_rejected").inc()
            handle._fulfil(SVDResponse(
                request_id=request.request_id, status="rejected",
                error=str(exc), engine=request.engine,
            ))
            raise
        self.metrics.counter("requests_submitted").inc()
        self.metrics.gauge("queue_depth").set(len(self.queue))
        return handle

    def submit_many(self, matrices, **kwargs) -> list[ResponseHandle]:
        """Submit a sequence of matrices; returns handles in input order."""
        return [self.submit(a, **kwargs) for a in matrices]

    def result(self, handle: ResponseHandle | str,
               timeout: float | None = None) -> SVDResponse:
        """Wait for a response, by handle or by request id."""
        if isinstance(handle, str):
            with self._pending_lock:
                found = self._pending.get(handle)
            if found is None:
                raise KeyError(f"unknown or already-collected request {handle!r}")
            handle = found
        return handle.result(timeout)

    # ---- observability --------------------------------------------------

    def stats(self) -> dict:
        """Snapshot of metrics, cache accounting, and queue state."""
        snap = self.metrics.snapshot()
        snap["queue"] = {"depth": len(self.queue),
                         "maxsize": self.queue.maxsize,
                         "policy": self.queue.policy}
        snap["cache"] = self.cache.snapshot() if self.cache else None
        snap["degradations"] = self._executor.degradations
        return snap

    def render_stats(self) -> str:
        """Human-readable metrics report."""
        return self.metrics.render_text()

    # ---- dispatch loop --------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            closing = self.queue.closed
            deadline = self._batcher.next_deadline()
            if deadline is None:
                wait = None if closing else _IDLE_WAIT_S
            else:
                wait = max(0.0, deadline - self._clock())
            request = self.queue.get(timeout=0.0 if closing else wait)
            now = self._clock()
            self.metrics.gauge("queue_depth").set(len(self.queue))
            if request is not None:
                full = self._batcher.add(request, now)
                if full is not None:
                    self._run_batch(full)
            for batch in self._batcher.poll(self._clock()):
                self._run_batch(batch)
            if closing and request is None:
                for batch in self._batcher.flush_all(self._clock()):
                    self._run_batch(batch)
                return

    def _run_batch(self, batch: Batch) -> None:
        now = self._clock()
        live: list[SVDRequest] = []
        for req in batch.requests:
            if req.expired(now):
                self.metrics.counter("requests_timeout").inc()
                self._respond(req, SVDResponse(
                    request_id=req.request_id, status="timeout",
                    error=f"deadline passed before dispatch "
                          f"(waited {now - req.submitted_at:.4f}s)",
                    engine=req.engine, queued_s=now - req.submitted_at,
                    total_s=now - req.submitted_at,
                ))
            else:
                live.append(req)
        if not live:
            return
        self.metrics.counter("batches_dispatched").inc()
        self.metrics.histogram("batch_size").observe(len(live))
        if len(live) > 1:
            self.metrics.counter("coalesced_requests").inc(len(live) - 1)
        budget = Batch(batch.key, live, batch.created_at,
                       batch.flushed_at).deadline_budget(now)
        started = self._clock()
        try:
            results, engine_used = self._executor.dispatch(
                [r.matrix for r in live], dict(live[0].options),
                engine=live[0].engine, deadline_budget_s=budget,
            )
        except Exception as exc:
            finished = self._clock()
            for req in live:
                self.metrics.counter("requests_failed").inc()
                self._respond(req, SVDResponse(
                    request_id=req.request_id, status="error", error=str(exc),
                    engine=req.engine, batch_size=len(live),
                    queued_s=started - req.submitted_at,
                    service_s=finished - started,
                    total_s=finished - req.submitted_at,
                ))
            return
        finished = self._clock()
        self.metrics.counter(f"engine_{engine_used}_requests").inc(len(live))
        for req, res in zip(live, results):
            if self.cache is not None:
                self.cache.put(req.cache_key, res)
            self.metrics.counter("requests_completed").inc()
            self.metrics.histogram("latency_s").observe(
                finished - req.submitted_at)
            self._respond(req, SVDResponse(
                request_id=req.request_id, status="ok", result=res,
                engine=engine_used, batch_size=len(live),
                queued_s=started - req.submitted_at,
                service_s=finished - started,
                total_s=finished - req.submitted_at,
            ))

    def _respond(self, request: SVDRequest, response: SVDResponse) -> None:
        with self._pending_lock:
            handle = self._pending.pop(request.request_id, None)
        if handle is not None:
            handle._fulfil(response)
