"""LRU result cache keyed by matrix content digests.

The paper's motivating workloads repeat themselves: IALM robust PCA
resubmits near-identical frames, streaming PCA re-decomposes the same
core shapes, LSI re-runs queries against one index.  Whenever the
*exact* same matrix arrives with the exact same solver options, the
decomposition is pure recomputation — so the serving layer memoises
:class:`repro.core.result.SVDResult` objects under the request's
content digest (:attr:`repro.serve.request.SVDRequest.cache_key`).

Eviction is LRU under a byte budget: each entry is costed by the size
of its factor arrays, and inserts evict least-recently-used entries
until the budget holds.  Results larger than the whole budget are
never admitted (counted as ``oversize``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.result import SVDResult
from repro.util.validation import check_positive_int

__all__ = ["result_nbytes", "CacheStats", "ResultCache"]

#: Fixed per-entry overhead charged on top of array payloads (object
#: headers, key string, bookkeeping) so many tiny results still respect
#: the budget.
ENTRY_OVERHEAD = 512


def result_nbytes(result: SVDResult) -> int:
    """Approximate resident size of a cached result in bytes."""
    total = ENTRY_OVERHEAD + result.s.nbytes
    if result.u is not None:
        total += result.u.nbytes
    if result.vt is not None:
        total += result.vt.nbytes
    return total


class CacheStats:
    """Mutable hit/miss/eviction accounting for one cache."""

    __slots__ = ("hits", "misses", "evictions", "oversize")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Plain-dict snapshot for metrics export."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "oversize": self.oversize,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Thread-safe LRU cache of SVD results under a byte budget.

    Parameters
    ----------
    max_bytes : int
        Total budget for cached factor arrays (plus a small fixed
        per-entry overhead).
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_bytes = check_positive_int(max_bytes, name="max_bytes")
        self._entries: OrderedDict[str, tuple[SVDResult, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently resident."""
        with self._lock:
            return self._bytes

    def get(self, key: str) -> SVDResult | None:
        """Look up *key*, refreshing its recency; ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: str, result: SVDResult) -> bool:
        """Insert *result* under *key*, evicting LRU entries to fit.

        Returns False (and admits nothing) when the result alone
        exceeds the whole budget; re-inserting an existing key
        refreshes its recency and replaces the entry.
        """
        size = result_nbytes(result)
        with self._lock:
            if size > self.max_bytes:
                self.stats.oversize += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            while self._bytes + size > self.max_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.stats.evictions += 1
            self._entries[key] = (result, size)
            self._bytes += size
            return True

    def keys(self) -> list[str]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def snapshot(self) -> dict:
        """Accounting snapshot: sizes plus :class:`CacheStats` fields."""
        with self._lock:
            out = self.stats.as_dict()
            out.update(items=len(self._entries), bytes=self._bytes,
                       max_bytes=self.max_bytes)
            return out
