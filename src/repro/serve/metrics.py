"""Lightweight serving metrics: counters, gauges, histograms.

No external dependency — just enough instrumentation for an operator to
answer the serving questions (queue depth, batch sizes, tail latency,
cache hit rate, per-engine throughput).  A :class:`MetricsRegistry`
owns named instruments, produces a nested :meth:`~MetricsRegistry.snapshot`
dict for programmatic use, and renders a fixed-width text report for
humans (the ``repro serve-demo`` output).

Histograms keep a bounded reservoir of recent observations for
quantile estimates (p50/p95/p99) alongside exact count/sum/min/max, so
memory stays constant under sustained traffic.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """Point-in-time value (queue depth, in-flight requests, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by *amount* (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """Distribution of observations with reservoir-backed quantiles.

    Exact ``count``/``sum``/``min``/``max`` over the full stream; the
    quantiles are computed over the most recent *window* observations.
    """

    __slots__ = ("name", "window", "_recent", "_count", "_sum", "_min",
                 "_max", "_lock")

    def __init__(self, name: str, window: int = 2048) -> None:
        self.name = name
        self.window = int(window)
        self._recent: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._recent.append(value)
            if len(self._recent) > self.window:
                del self._recent[: len(self._recent) - self.window]

    @property
    def count(self) -> int:
        """Observations recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean over the full stream (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the recent window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            data = sorted(self._recent)
        if not data:
            return 0.0
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> dict:
        """count/mean/min/max plus p50/p95/p99."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instrument registry with snapshot and text rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        """Get or create the histogram *name*."""
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name, window))

    def snapshot(self) -> dict:
        """Nested dict of every instrument's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.summary() for n, h in sorted(histograms.items())},
        }

    def render_text(self) -> str:
        """Fixed-width human-readable report of the snapshot."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<32s} {value:>12,}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<32s} {value:>12g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, s in snap["histograms"].items():
                lines.append(
                    f"  {name:<32s} n={s['count']:<7d} mean={s['mean']:.6g} "
                    f"p50={s['p50']:.6g} p95={s['p95']:.6g} "
                    f"p99={s['p99']:.6g} max={s['max']:.6g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
