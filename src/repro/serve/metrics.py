"""Serving metrics — compatibility shim over :mod:`repro.obs.metrics`.

The serving layer's counters/gauges/histograms were promoted to the
process-wide observability package (labels, a default global registry,
Prometheus exposition); this module re-exports the same names so
existing imports — ``from repro.serve.metrics import MetricsRegistry``
— keep working unchanged.  New code should import from
:mod:`repro.obs.metrics` directly.

The behavioural contract is identical: unlabeled instruments, the
nested ``snapshot()`` dict shape, the fixed-width ``render_text()``
report, and reservoir-backed interpolated quantiles.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
