"""Baselines: every comparator in the paper's evaluation, from scratch.

* :mod:`repro.baselines.householder` / :mod:`golub_kahan_qr` /
  :mod:`gkr_svd` — the MATLAB/LAPACK-style Golub-Reinsch SVD
  (Householder bidiagonalization + implicit-shift QR), runnable.
* :mod:`repro.baselines.twosided_jacobi` — the classic two-sided Jacobi
  SVD (square-only), runnable.
* :mod:`repro.baselines.systolic_model` — Brent-Luk systolic-array
  capacity/timing model (the related FPGA architecture family).
* :mod:`repro.baselines.plain_hestenes` — the non-caching Hestenes
  baseline ([12]-style) and its fixed-point FPGA timing anchor.
* :mod:`repro.baselines.sw_model` / :mod:`gpu_model` — calibrated
  timing models of the paper's MATLAB, MKL and GPU comparison curves.
"""

from repro.baselines.cordic_jacobi import CordicSvdResult, cordic_hestenes_svd
from repro.baselines.divide_conquer import cuppen_tridiagonal_eigh, dc_svd, secular_roots
from repro.baselines.gkr_svd import gkr_flops, golub_reinsch_svd
from repro.baselines.lanczos import lanczos_bidiagonalization, lanczos_svd
from repro.baselines.golub_kahan_qr import (
    BidiagonalQRError,
    givens,
    qr_iterate_bidiagonal,
)
from repro.baselines.gpu_model import (
    GPU_8800_MODEL,
    GPU_HESTENES_POINTS,
    GpuTimingModel,
    gpu_hestenes_seconds,
)
from repro.baselines.householder import (
    apply_reflector_left,
    apply_reflector_right,
    bidiagonalize,
    householder_vector,
)
from repro.baselines.plain_hestenes import (
    FIXED_POINT_LIMIT,
    fixed_point_fpga_seconds,
    plain_hestenes_svd,
    recompute_ratio,
)
from repro.baselines.sw_model import MATLAB_MODEL, MKL_MODEL, SoftwareTimingModel
from repro.baselines.systolic_model import SystolicArrayModel
from repro.baselines.twosided_jacobi import two_sided_jacobi_svd

__all__ = [
    "BidiagonalQRError",
    "CordicSvdResult",
    "FIXED_POINT_LIMIT",
    "cordic_hestenes_svd",
    "cuppen_tridiagonal_eigh",
    "dc_svd",
    "lanczos_bidiagonalization",
    "lanczos_svd",
    "secular_roots",
    "GPU_8800_MODEL",
    "GPU_HESTENES_POINTS",
    "GpuTimingModel",
    "MATLAB_MODEL",
    "MKL_MODEL",
    "SoftwareTimingModel",
    "SystolicArrayModel",
    "apply_reflector_left",
    "apply_reflector_right",
    "bidiagonalize",
    "fixed_point_fpga_seconds",
    "gkr_flops",
    "givens",
    "golub_reinsch_svd",
    "gpu_hestenes_seconds",
    "householder_vector",
    "plain_hestenes_svd",
    "qr_iterate_bidiagonal",
    "recompute_ratio",
    "two_sided_jacobi_svd",
]
