"""Implicit-shift QR iteration on a bidiagonal matrix (Golub-Kahan).

The second half of the Golub-Reinsch SVD: given the bidiagonal
``B = diag(d) + superdiag(e)`` from
:func:`repro.baselines.householder.bidiagonalize`, repeated implicit
Wilkinson-shift QR steps drive the superdiagonal to zero; the diagonal
converges to the singular values.  Left/right Givens rotations are
optionally accumulated into U and Vᵀ.

Implementation follows Golub & Van Loan, Algorithm 8.6.1 (svd step) and
8.6.2 (driver with decoupling and zero-diagonal deflation):

* superdiagonal entries with ``|e[i]| <= tol * (|d[i]| + |d[i+1]|)``
  are set to zero (decoupling);
* a zero diagonal entry inside an unreduced block is eliminated by a
  sweep of left Givens rotations that zeroes its row;
* the trailing unreduced block gets one QR step per iteration.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["givens", "qr_iterate_bidiagonal", "BidiagonalQRError"]


class BidiagonalQRError(RuntimeError):
    """QR iteration failed to converge within the iteration budget."""


def givens(f: float, g: float) -> tuple[float, float, float]:
    """Stable Givens rotation: returns (c, s, r) with
    ``[[c, s], [-s, c]] @ [f, g]ᵀ = [r, 0]ᵀ``."""
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.hypot(f, g)
    return f / r, g / r, r


def _wilkinson_shift(d: np.ndarray, e: np.ndarray, lo: int, hi: int) -> float:
    """Shift: eigenvalue of the trailing 2x2 of BᵀB closest to its
    bottom-right entry (Wilkinson), computed without forming BᵀB."""
    # Trailing 2x2 of T = BᵀB for the block [lo, hi]:
    #   [ d[hi-1]^2 + e[hi-2]^2      d[hi-1] e[hi-1]        ]
    #   [ d[hi-1] e[hi-1]            d[hi]^2 + e[hi-1]^2    ]
    dm = d[hi - 1]
    dn = d[hi]
    em = e[hi - 1]
    el = e[hi - 2] if hi - 2 >= lo else 0.0
    t11 = dm * dm + el * el
    t12 = dm * em
    t22 = dn * dn + em * em
    delta = (t11 - t22) / 2.0
    if delta == 0.0 and t12 == 0.0:
        return t22
    denom = delta + math.copysign(math.hypot(delta, t12), delta if delta != 0 else 1.0)
    if denom == 0.0:
        return t22
    return t22 - t12 * t12 / denom


def _svd_step(
    d: np.ndarray,
    e: np.ndarray,
    lo: int,
    hi: int,
    u: np.ndarray | None,
    vt: np.ndarray | None,
) -> None:
    """One implicit-shift QR step on the unreduced block [lo, hi]."""
    mu = _wilkinson_shift(d, e, lo, hi)
    y = d[lo] * d[lo] - mu
    z = d[lo] * e[lo]
    for k in range(lo, hi):
        # Right rotation on columns (k, k+1).
        c, s, _ = givens(y, z)
        if k > lo:
            e[k - 1] = c * e[k - 1] + s * z_bulge
        dk = d[k]
        ek = e[k]
        d[k] = c * dk + s * ek
        e[k] = -s * dk + c * ek
        z_bulge = s * d[k + 1]
        d[k + 1] = c * d[k + 1]
        if vt is not None:
            rk = vt[k, :].copy()
            vt[k, :] = c * rk + s * vt[k + 1, :]
            vt[k + 1, :] = -s * rk + c * vt[k + 1, :]
        # Left rotation on rows (k, k+1).
        c, s, r = givens(d[k], z_bulge)
        d[k] = r
        ek = e[k]
        e[k] = c * ek + s * d[k + 1]
        d[k + 1] = -s * ek + c * d[k + 1]
        if k < hi - 1:
            z_bulge = s * e[k + 1]
            e[k + 1] = c * e[k + 1]
        if u is not None:
            ck = u[:, k].copy()
            u[:, k] = c * ck + s * u[:, k + 1]
            u[:, k + 1] = -s * ck + c * u[:, k + 1]
        y = e[k]
        if k < hi - 1:
            z = z_bulge


def _zero_row_sweep(
    d: np.ndarray,
    e: np.ndarray,
    i: int,
    hi: int,
    u: np.ndarray | None,
) -> None:
    """Eliminate the superdiagonal of a zero diagonal entry d[i] == 0.

    Left Givens rotations against rows i+1..hi push e[i] off the end,
    zeroing row i of the block (GVL 8.6.2's zero-diagonal case).
    """
    f = e[i]
    e[i] = 0.0
    for j in range(i + 1, hi + 1):
        c, s, r = givens(d[j], f)
        d[j] = r
        if j < hi:
            f = -s * e[j]
            e[j] = c * e[j]
        if u is not None:
            cj = u[:, j].copy()
            u[:, j] = c * cj + s * u[:, i]
            u[:, i] = -s * cj + c * u[:, i]


def qr_iterate_bidiagonal(
    d,
    e,
    u: np.ndarray | None = None,
    vt: np.ndarray | None = None,
    *,
    tol: float = 1e-15,
    max_iterations: int | None = None,
):
    """Diagonalize an upper bidiagonal matrix in place.

    Parameters
    ----------
    d, e : array_like
        Diagonal (length n) and superdiagonal (length n-1); modified in
        place (copies are made of the inputs).
    u, vt : numpy.ndarray, optional
        Factor matrices updated by the applied rotations (columns of u,
        rows of vt).  Modified in place when given.
    tol : float
        Relative decoupling threshold.
    max_iterations : int, optional
        Iteration budget; default ``30 * n`` QR steps (the LAPACK
        heuristic).  Exceeding it raises :class:`BidiagonalQRError`.

    Returns
    -------
    (d, u, vt)
        ``d`` holds the (unsorted, possibly signed) singular values.
    """
    d = np.asarray(d, dtype=np.float64).copy()
    e = np.asarray(e, dtype=np.float64).copy()
    n = d.size
    if e.size != max(n - 1, 0):
        raise ValueError(f"e must have length n-1 = {n - 1}, got {e.size}")
    if n == 0:
        return d, u, vt
    # Normalize to unit max magnitude: the Wilkinson shift squares
    # diagonal entries, which overflows past 1e154; Givens rotations
    # and singular values are scale-equivariant, so iterate on the
    # scaled problem and scale back at the end.
    scale = float(max(np.max(np.abs(d)), np.max(np.abs(e)) if e.size else 0.0))
    if scale > 0.0 and scale != 1.0:
        d /= scale
        e /= scale
    budget = 30 * n if max_iterations is None else max_iterations

    hi = n - 1
    iterations = 0
    while hi > 0:
        # Decouple negligible superdiagonals.
        for i in range(hi):
            if abs(e[i]) <= tol * (abs(d[i]) + abs(d[i + 1])):
                e[i] = 0.0
        # Shrink the active block from the bottom.
        while hi > 0 and e[hi - 1] == 0.0:
            hi -= 1
        if hi == 0:
            break
        lo = hi - 1
        while lo > 0 and e[lo - 1] != 0.0:
            lo -= 1
        # Zero diagonal inside the block: deflate it explicitly.
        deflated = False
        for i in range(lo, hi):
            if d[i] == 0.0:
                _zero_row_sweep(d, e, i, hi, u)
                deflated = True
                break
        if deflated:
            continue
        _svd_step(d, e, lo, hi, u, vt)
        iterations += 1
        if iterations > budget:
            raise BidiagonalQRError(
                f"no convergence after {iterations} QR steps "
                f"(block [{lo}, {hi}], e = {e[lo:hi]})"
            )
    if scale > 0.0 and scale != 1.0:
        d *= scale
    return d, u, vt
