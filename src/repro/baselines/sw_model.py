"""Calibrated timing models of the paper's software comparators.

The paper compares against (Fig. 7-9):

* "Matlab 7.10.0 SVD routine running on a 2.2 GHz dual core Intel Xeon"
* "SVD solutions with Intel MKL 10.0.4"

We cannot rerun 2010-era MATLAB on a 2009 Xeon, so we model each as a
flop-rate machine whose *effective* rate grows with the problem's
small dimension — the well-documented behaviour of LAPACK-era dgesvd,
which runs far below peak on small matrices (little blocking, call
overhead) and approaches peak on large ones.  Concretely::

    t(m, n) = overhead + flops_sv(m, n) / R(min(m, n))
    R(k)    = min(R_max, slope * k)       [FLOP/s]

``flops_sv`` is the textbook Golub-Reinsch singular-values-only count
(:func:`repro.baselines.gkr_svd.gkr_flops` — MATLAB's single-output
``svd(A)`` computes only singular values, matching the FPGA's output).

**Calibration.** The paper never reports its software baseline's
absolute times; the only anchors are (a) the speedup band "3.8x to
43.6x for column sizes 128-256 and rows 128-2048" (Fig. 9), (b) "better
efficiency than other software solutions when matrix with dimensions
under 512" and (c) "slows down when the dimensions over 512" (Fig. 7).
The constants below reproduce those anchors against our Table-I cycle
model: the minimum modelled speedup in the Fig. 9 band lands at ~3.8
(256 x 256), the maximum at ~40 (2048 rows x 128 cols), the MATLAB
crossover versus the FPGA falls between 512 and 1024, and the MKL
crossover at ~512.  See EXPERIMENTS.md for the resulting numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gkr_svd import gkr_flops
from repro.util.validation import check_positive_int

__all__ = ["SoftwareTimingModel", "MATLAB_MODEL", "MKL_MODEL"]


@dataclass(frozen=True)
class SoftwareTimingModel:
    """Dimension-dependent-efficiency flop-rate model.

    Attributes
    ----------
    name : str
        Label used in reports ("MATLAB 7.10 (model)", ...).
    rate_slope : float
        FLOP/s of effective throughput gained per unit of the small
        dimension (LAPACK efficiency grows roughly linearly with
        blocking opportunity until saturating).
    rate_max : float
        Peak effective FLOP/s (saturation).
    overhead_s : float
        Fixed per-call overhead (interpreter dispatch, workspace
        allocation).
    compute_uv : bool
        Whether the modelled call computes factors (the paper's
        comparisons are singular-values-only).
    """

    name: str
    rate_slope: float
    rate_max: float
    overhead_s: float = 0.0
    compute_uv: bool = False

    def rate(self, m: int, n: int) -> float:
        """Effective FLOP/s on an m x n problem."""
        k = min(m, n)
        return min(self.rate_max, self.rate_slope * k)

    def seconds(self, m: int, n: int) -> float:
        """Modelled execution time for an m x n SVD."""
        m = check_positive_int(m, name="m")
        n = check_positive_int(n, name="n")
        flops = gkr_flops(m, n, compute_uv=self.compute_uv)
        return self.overhead_s + flops / self.rate(m, n)


#: MATLAB 7.10 ``svd(A)`` on the 2.2 GHz Xeon (singular values only).
#: R(128) = 0.14 GF, R(256) = 0.28 GF, R(1024) = 1.13 GF, cap 6 GF.
MATLAB_MODEL = SoftwareTimingModel(
    name="MATLAB 7.10 (model)",
    rate_slope=1.1e6,
    rate_max=6.0e9,
    overhead_s=1.0e-3,
)

#: Intel MKL 10.0.4 dgesvd on the same host — roughly 2x the MATLAB
#: effective rate with far lower call overhead.
MKL_MODEL = SoftwareTimingModel(
    name="Intel MKL 10.0.4 (model)",
    rate_slope=2.4e6,
    rate_max=12.0e9,
    overhead_s=1.0e-4,
)
