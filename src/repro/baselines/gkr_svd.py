"""Golub-Reinsch SVD: the from-scratch software baseline.

Combines Householder bidiagonalization with the implicit-shift QR
iteration — the algorithm behind the MATLAB/LAPACK comparators in the
paper's Figs 7-9.  Matching the comparison conditions, it supports both
the singular-values-only mode (what ``svd(A)`` with one output runs)
and full factors.

Also provides :func:`gkr_flops`, the textbook flop counts used by the
calibrated software timing model (:mod:`repro.baselines.sw_model`).
"""

from __future__ import annotations

from repro.baselines.golub_kahan_qr import qr_iterate_bidiagonal
from repro.baselines.householder import bidiagonalize
from repro.core.result import SVDResult
from repro.util.numerics import sort_svd
from repro.util.validation import as_float_matrix

__all__ = ["golub_reinsch_svd", "gkr_flops"]


def golub_reinsch_svd(a, *, compute_uv: bool = True, tol: float = 1e-15) -> SVDResult:
    """Compute the SVD by Householder bidiagonalization + QR iteration.

    Parameters
    ----------
    a : array_like
        Arbitrary m x n real matrix; wide matrices are handled by
        factoring the transpose and swapping U and V.
    compute_uv : bool
        Whether to accumulate the factor matrices.
    tol : float
        Decoupling threshold of the QR iteration.

    Returns
    -------
    SVDResult
        Economy-size factors; ``method="golub_reinsch"``.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    transposed = m < n
    work = a.T if transposed else a

    u, d, e, vt = bidiagonalize(work, compute_uv=compute_uv)
    d, u, vt = qr_iterate_bidiagonal(d, e, u, vt, tol=tol)

    if compute_uv:
        u, s, vt = sort_svd(u, d, vt)
        if transposed:
            u, vt = vt.T, u.T
    else:
        _, s, _ = sort_svd(None, d, None)
        u = vt = None
    return SVDResult(s=s, u=u, vt=vt, method="golub_reinsch", converged=True)


def gkr_flops(m: int, n: int, *, compute_uv: bool = False) -> float:
    """Textbook flop count of the Golub-Reinsch SVD (GVL Table 8.6.1).

    Singular values only: ``4 m n^2 - 4 n^3 / 3`` (bidiagonalization)
    plus O(n^2) per QR sweep — modelled as ``+ 30 n^2`` for the usual
    ~2 QR steps per singular value.  With factors, the accumulation adds
    ``4 m^2 n + 8 m n^2 + 9 n^3`` style terms; we use the economy-U
    variant (``14 m n^2 + 8 n^3``), matching LAPACK's dgesvd jobz='S'.
    The count is symmetric in (m, n) — the smaller dimension plays n.
    """
    if m < 1 or n < 1:
        raise ValueError("dimensions must be >= 1")
    if m < n:
        m, n = n, m
    if compute_uv:
        return 14.0 * m * n * n + 8.0 * n**3
    return 4.0 * m * n * n - 4.0 * n**3 / 3.0 + 30.0 * n * n
