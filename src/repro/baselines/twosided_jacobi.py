"""Classic two-sided Jacobi SVD (Kogbetliantz / Brent-Luk).

The architecture family the paper positions itself against: every
sweep annihilates each off-diagonal pair (p, q) of a *square* matrix by
a left rotation (angle beta) and a right rotation (angle alpha) solving
eq. (5); on FPGAs this maps to the n/2 x n/2 systolic array of Brent,
Luk & Van Loan [9].

The squareness restriction is structural — the 2 x 2 sub-rotations need
both (p, q) rows and columns — and is enforced here with a
``ValueError``, reproducing the limitation the Hestenes method removes
(Section II-B/II-C of the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.convergence import ConvergenceCriterion, ConvergenceTrace
from repro.core.ordering import make_sweep
from repro.core.result import SVDResult
from repro.core.rotation import two_sided_angles
from repro.util.numerics import sort_svd
from repro.util.validation import as_square_matrix

__all__ = ["two_sided_jacobi_svd"]


def _off_diagonal_fro(a: np.ndarray) -> float:
    """off(A): Frobenius norm of all off-diagonal entries (both halves,
    since two-sided Jacobi operates on a full square matrix)."""
    # Subtraction can go infinitesimally negative at convergence.
    return float(np.sqrt(max(np.sum(a * a) - np.sum(np.diag(a) ** 2), 0.0)))


def _rotate_rows_transposed(a: np.ndarray, p: int, q: int, theta: float) -> None:
    """``A <- G(theta)ᵀ A`` with G = [[c, s], [-s, c]] in the (p, q) plane."""
    c, s = math.cos(theta), math.sin(theta)
    rp = a[p, :].copy()
    a[p, :] = c * rp - s * a[q, :]
    a[q, :] = s * rp + c * a[q, :]


def _rotate_cols(a: np.ndarray, p: int, q: int, theta: float) -> None:
    """``A <- A G(theta)`` with G = [[c, s], [-s, c]] in the (p, q) plane."""
    c, s = math.cos(theta), math.sin(theta)
    cp = a[:, p].copy()
    a[:, p] = c * cp - s * a[:, q]
    a[:, q] = s * cp + c * a[:, q]


def two_sided_jacobi_svd(
    a,
    *,
    compute_uv: bool = True,
    criterion: ConvergenceCriterion | None = None,
    ordering: str = "cyclic",
    seed=None,
    pair_threshold: float = 1e-15,
) -> SVDResult:
    """SVD of a square matrix by two-sided Jacobi rotations.

    Parameters
    ----------
    a : array_like
        Square n x n matrix — rectangular input raises ``ValueError``
        (use :func:`repro.core.svd.hestenes_svd` for those; that
        asymmetry is the paper's motivation).
    compute_uv, criterion, ordering, seed
        As in the one-sided implementations; the convergence metric is
        evaluated on the iterated matrix itself (off-diagonal Frobenius
        norm relative to start).
    pair_threshold : float
        Skip threshold on the 2x2 off-diagonal magnitude relative to
        the matrix norm.

    Returns
    -------
    SVDResult with ``method="two_sided_jacobi"``.
    """
    work = as_square_matrix(a, name="a").copy()
    n = work.shape[0]
    criterion = criterion or ConvergenceCriterion(max_sweeps=20, tol=None)

    u = np.eye(n) if compute_uv else None
    v = np.eye(n) if compute_uv else None
    scale = float(np.linalg.norm(work))
    trace = ConvergenceTrace(metric="off_fro")
    trace.record(0, _off_diagonal_fro(work))

    converged = False
    sweeps_done = 0
    for sweep in range(1, criterion.max_sweeps + 1):
        rotations = 0
        skipped = 0
        for round_pairs in make_sweep(n, ordering, seed):
            for p, q in round_pairs:
                off = math.hypot(work[p, q], work[q, p])
                if off <= pair_threshold * scale:
                    skipped += 1
                    continue
                left, right = two_sided_angles(
                    work[p, p], work[p, q], work[q, p], work[q, q]
                )
                # B <- G(left)ᵀ B G(right); accumulate U G(left), V G(right)
                # so A = U B Vᵀ stays invariant.
                _rotate_rows_transposed(work, p, q, left)
                _rotate_cols(work, p, q, right)
                if u is not None:
                    _rotate_cols(u, p, q, left)
                    _rotate_cols(v, p, q, right)
                rotations += 1
        sweeps_done = sweep
        value = _off_diagonal_fro(work)
        trace.record(sweep, value, rotations, skipped)
        if rotations == 0 or criterion.satisfied(value):
            converged = True
            break
    trace.converged = converged

    diag = np.diag(work).copy()
    if compute_uv:
        u_s, s, vt = sort_svd(u, diag, v.T)
        return SVDResult(
            s=s, u=u_s, vt=vt, sweeps=sweeps_done, trace=trace,
            method="two_sided_jacobi", converged=converged,
        )
    _, s, _ = sort_svd(None, diag, None)
    return SVDResult(
        s=s, sweeps=sweeps_done, trace=trace,
        method="two_sided_jacobi", converged=converged,
    )
