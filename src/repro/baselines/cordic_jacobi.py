"""Fixed-point CORDIC Hestenes-Jacobi SVD — the [12]-style datapath.

Assembles :mod:`repro.hw.fixed_point` into a complete decomposition the
way the fixed-point FPGA literature does: norms/covariances accumulated
in fixed point, rotation angles from a CORDIC vectoring pass
(``theta = atan2(2 cov, norm_j - norm_i) / 2``), and column element
pairs rotated through CORDIC rotation mode.

Running it quantifies the paper's floating-point argument:

* for well-scaled inputs (entries around unity) the fixed-point result
  tracks float64 to roughly the quantization resolution;
* large-magnitude inputs *saturate* the Q-format accumulators
  (squared norms overflow first) and the factorization degrades or
  fails — the "wider dynamic range" IEEE-754 buys (Section V-B);
* tiny-magnitude inputs quantize to zero.

The benchmark `bench_ablation.py::test_fixed_point_dynamic_range`
sweeps input scales across this cliff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ordering import cyclic_sweep
from repro.hw.fixed_point import CordicCore, QFormat
from repro.util.validation import as_float_matrix, check_positive_int

__all__ = ["CordicSvdResult", "cordic_hestenes_svd"]


@dataclass
class CordicSvdResult:
    """Outcome of a fixed-point decomposition, with fidelity telemetry.

    Attributes
    ----------
    s : ndarray
        Singular values (descending), converted back to float for
        reporting (the hardware would emit fixed-point words).
    saturations : int
        Saturating-arithmetic events — nonzero means the dynamic range
        of the format was exceeded somewhere (results untrustworthy).
    quantized_to_zero : float
        Fraction of input entries that mapped to the zero word.
    sweeps : int
    format : QFormat
    """

    s: np.ndarray
    saturations: int
    quantized_to_zero: float
    sweeps: int
    format: QFormat


def cordic_hestenes_svd(
    a,
    *,
    fmt: QFormat | None = None,
    cordic_iterations: int = 24,
    sweeps: int = 6,
) -> CordicSvdResult:
    """One-sided Jacobi SVD entirely in fixed-point/CORDIC arithmetic.

    Parameters
    ----------
    a : array_like
        Input matrix.  *Not* rescaled internally: feeding poorly scaled
        data and reading the saturation counter is the point.
    fmt : QFormat
        Data format; default Q15.16 (the classic DSP choice).
    cordic_iterations : int
        Micro-rotations per CORDIC operation (~bits of angle accuracy).
    sweeps : int
        Fixed sweep count, as in the hardware designs.
    """
    a = as_float_matrix(a, name="a")
    check_positive_int(sweeps, name="sweeps")
    fmt = fmt or QFormat(15, 16)
    fmt.reset_counters()
    cordic = CordicCore(fmt, cordic_iterations)
    m, n = a.shape

    qa = fmt.quantize(a)
    zero_frac = float(np.mean((qa == 0) & (a != 0.0)))

    half_raw = 1 << (fmt.frac_bits - 1)

    def dot(u_raw, v_raw) -> int:
        # Multiply-accumulate with a single final shift — the wide
        # accumulator every fixed-point MAC array provides.  The final
        # saturate models writing the result back to the data width.
        acc = int(np.sum(u_raw.astype(object) * v_raw.astype(object)))
        return int(fmt.saturate(np.int64(
            max(min((acc + half_raw) >> fmt.frac_bits, 2**62), -(2**62))
        )))

    for _sweep in range(sweeps):
        for rnd in cyclic_sweep(n):
            for i, j in rnd:
                ci = qa[:, i]
                cj = qa[:, j]
                cov = dot(ci, cj)
                if cov == 0:
                    continue
                ni = dot(ci, ci)
                nj = dot(cj, cj)
                # theta = atan2(2 cov, nj - ni) / 2, all in raw words.
                two_cov = int(fmt.saturate(np.int64(2 * cov)))
                d = int(fmt.saturate(np.int64(nj - ni)))
                angle = cordic.atan2(two_cov, d) // 2
                # Rotate the whole column pair through CORDIC rotation
                # mode (x' = x cos z - y sin z, matching eq. 11-12);
                # one shared angle drives every element — the hardware
                # streaming pattern, vectorized here.
                xs, ys = cordic.rotation_array(qa[:, i], qa[:, j], angle)
                qa[:, i] = xs
                qa[:, j] = ys

    cols = fmt.to_float(qa)
    norms = np.linalg.norm(cols, axis=0)
    s = np.sort(norms)[::-1][: min(m, n)]
    return CordicSvdResult(
        s=s,
        saturations=fmt.saturations,
        quantized_to_zero=zero_frac,
        sweeps=sweeps,
        format=fmt,
    )
