"""Brent-Luk systolic-array model for two-sided Jacobi on FPGAs.

The related-work architecture ([9], [19]-[21]) the paper contrasts
against: an (n/2) x (n/2) mesh of processing elements computes a full
two-sided Jacobi sweep in O(n) systolic steps, achieving O(n log n)
total time — but it needs n^2/4 PEs *on chip*, which caps the largest
square matrix a device can handle.  This module quantifies both sides
of that trade on the paper's Virtex-5, reproducing the scalability
critique of Sections I/III ("the scalability of those implementations
are limited, and the designs are restricted to only handle square input
matrices").
"""

from __future__ import annotations

import math

from repro.hw.params import PAPER_ARCH, PlatformParams
from repro.util.validation import check_positive_int

__all__ = ["SystolicArrayModel"]


class SystolicArrayModel:
    """Timing + capacity model of a Brent-Luk SVD systolic array.

    Parameters
    ----------
    platform : PlatformParams
        Device whose LUT budget caps the PE count.
    pe_luts : int
        LUTs per processing element.  A 2x2 two-sided Jacobi PE holds a
        CORDIC (or multiplier-based) rotator plus neighbour links; 2000
        LUTs is a mid-range figure for fixed-point Virtex-5 PEs from
        the cited implementations.
    step_cycles : int
        Cycles per systolic step (one 2x2 rotation + data exchange).
    clock_hz : float
        Array clock.
    sweeps : int
        Jacobi sweeps to convergence (log n-ish; 10 covers the paper's
        sizes).
    """

    def __init__(
        self,
        platform: PlatformParams | None = None,
        *,
        pe_luts: int = 2000,
        step_cycles: int = 30,
        clock_hz: float = 150e6,
        sweeps: int = 10,
    ) -> None:
        self.platform = platform or PAPER_ARCH.platform
        self.pe_luts = check_positive_int(pe_luts, name="pe_luts")
        self.step_cycles = check_positive_int(step_cycles, name="step_cycles")
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.clock_hz = clock_hz
        self.sweeps = check_positive_int(sweeps, name="sweeps")

    def pe_count(self, n: int) -> int:
        """PEs required for an n x n matrix: ceil(n/2)^2."""
        n = check_positive_int(n, name="n")
        half = math.ceil(n / 2)
        return half * half

    @property
    def max_square_size(self) -> int:
        """Largest n whose PE array fits the device's LUT budget."""
        max_pes = self.platform.luts // self.pe_luts
        return 2 * int(math.isqrt(max_pes))

    def fits(self, n: int) -> bool:
        return self.pe_count(n) * self.pe_luts <= self.platform.luts

    def seconds(self, m: int, n: int) -> float:
        """Decomposition time, or raise for unsupported shapes.

        Raises
        ------
        ValueError
            For rectangular input (the architecture's structural
            restriction) or when the PE array exceeds the device.
        """
        m = check_positive_int(m, name="m")
        n = check_positive_int(n, name="n")
        if m != n:
            raise ValueError(
                "two-sided Jacobi systolic arrays handle square matrices only "
                f"(got {m} x {n}) — the restriction the Hestenes method removes"
            )
        if not self.fits(n):
            raise ValueError(
                f"n = {n} needs {self.pe_count(n)} PEs "
                f"({self.pe_count(n) * self.pe_luts} LUTs) but the "
                f"{self.platform.name} provides {self.platform.luts}; "
                f"max square size is {self.max_square_size}"
            )
        # O(n) systolic steps per sweep (the array retires a full sweep
        # in ~n steps of simultaneous 2x2 rotations + shifts).
        cycles = self.sweeps * n * self.step_cycles
        return cycles / self.clock_hz
