"""Householder reflections and Golub-Kahan bidiagonalization.

This is the software-baseline substrate: "optimized software
implementations (e.g., MATLAB, LAPACK) employ the Householder
transformation" (paper, Section I).  We implement the full
Golub-Kahan bidiagonalization from scratch: alternating left/right
Householder reflectors reduce an m x n matrix (m >= n) to upper
bidiagonal form ``B = Uᵀ A V``, after which the implicit-shift QR
iteration of :mod:`repro.baselines.golub_kahan_qr` produces singular
values.

The reflector convention is ``H = I - beta v vᵀ`` with ``v[0] = 1``
(LAPACK style), applied as a rank-one update — O(mn) per reflector, so
bidiagonalization costs the textbook ``4 m n^2 - 4 n^3 / 3`` flops.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import as_float_matrix

__all__ = ["householder_vector", "apply_reflector_left", "apply_reflector_right", "bidiagonalize"]


def householder_vector(x: np.ndarray) -> tuple[np.ndarray, float]:
    """Compute (v, beta) with ``(I - beta v vᵀ) x = ||x|| e1`` and v[0]=1.

    Uses the sign choice that avoids cancellation (the reflected vector
    points away from x's first component), as in LAPACK's dlarfg.
    Returns beta = 0 for x already proportional to e1 (no reflection).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("x must be a non-empty vector")
    # Scale to unit max magnitude: v is invariant under scaling of x,
    # and this keeps sigma/v0 out of the denormal range (LAPACK dlarfg
    # rescales for the same reason).
    xmax = float(np.max(np.abs(x)))
    if xmax == 0.0:
        return np.concatenate(([1.0], np.zeros(x.size - 1))), 0.0
    v = x / xmax
    sigma = float(v[1:] @ v[1:])
    alpha = float(v[0])
    norm_sq = alpha * alpha + sigma
    eps = np.finfo(np.float64).eps
    # A tail below eps^2 of the squared norm is unreflectable in
    # float64 (beta would underflow while v/v0 overflows); skipping it
    # leaves a residual of at most eps * ||x||.
    if sigma <= (eps * eps) * norm_sq:
        return np.concatenate(([1.0], np.zeros(x.size - 1))), 0.0
    norm_x = np.sqrt(norm_sq)
    # v0 = alpha - (+-norm): pick the sign that adds magnitudes.
    v0 = alpha - norm_x if alpha <= 0 else -sigma / (alpha + norm_x)
    beta = 2.0 * v0 * v0 / (sigma + v0 * v0)
    v = v / v0
    v[0] = 1.0
    return v, beta


def apply_reflector_left(a: np.ndarray, v: np.ndarray, beta: float) -> None:
    """In-place ``A <- (I - beta v vᵀ) A`` (rows of A combined)."""
    if beta == 0.0:
        return
    w = beta * (v @ a)
    a -= np.outer(v, w)


def apply_reflector_right(a: np.ndarray, v: np.ndarray, beta: float) -> None:
    """In-place ``A <- A (I - beta v vᵀ)`` (columns of A combined)."""
    if beta == 0.0:
        return
    w = beta * (a @ v)
    a -= np.outer(w, v)


def bidiagonalize(
    a, *, compute_uv: bool = True
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray, np.ndarray | None]:
    """Golub-Kahan bidiagonalization of an m x n matrix with m >= n.

    Returns ``(u, d, e, vt)``: ``u`` is m x n with orthonormal columns,
    ``d`` (length n) the diagonal, ``e`` (length n-1) the
    superdiagonal, ``vt`` is n x n orthogonal, such that
    ``a = u @ B @ vt`` with B the upper bidiagonal matrix built from
    (d, e).  With ``compute_uv=False``, ``u`` and ``vt`` are None.

    Raises ``ValueError`` when m < n — call with the transpose and swap
    factors, as :func:`repro.baselines.gkr_svd.golub_reinsch_svd` does.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    if m < n:
        raise ValueError("bidiagonalize requires m >= n; transpose first")
    work = a.copy()
    u = np.eye(m, n) if compute_uv else None
    v = np.eye(n) if compute_uv else None

    # Store reflectors to apply to U in backward order (cheaper than
    # carrying a full m x m U through the reduction).
    left_reflectors: list[tuple[int, np.ndarray, float]] = []
    for k in range(n):
        # Left reflector: zero below-diagonal of column k.
        vk, beta = householder_vector(work[k:, k])
        apply_reflector_left(work[k:, k:], vk, beta)
        left_reflectors.append((k, vk, beta))
        if k < n - 2:
            # Right reflector: zero to the right of the superdiagonal
            # in row k.
            vk, beta = householder_vector(work[k, k + 1 :])
            apply_reflector_right(work[k:, k + 1 :], vk, beta)
            if v is not None:
                apply_reflector_right(v[:, k + 1 :], vk, beta)

    if compute_uv:
        # U = H_0 H_1 ... H_{n-1} (first n columns): apply backwards.
        for k, vk, beta in reversed(left_reflectors):
            apply_reflector_left(u[k:, :], vk, beta)

    d = np.diag(work[:n, :n]).copy()
    e = np.diag(work[:n, :n], k=1).copy()
    vt = v.T if compute_uv else None
    return u, d, e, vt
