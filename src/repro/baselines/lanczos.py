"""Golub-Kahan-Lanczos partial bidiagonalization and partial SVD.

The literal algorithm behind "running partial SVD 15 times" in the
paper's video-surveillance anecdote ([4] uses PROPACK-style Lanczos):
build an l-step Krylov bidiagonalization

    ``A V_l = U_l B_l,   Aᵀ U_l = V_l B_lᵀ + beta_l v_{l+1} e_lᵀ``

with ``B_l`` lower-bidiagonal, then take the SVD of the small ``B_l``
(via :mod:`repro.baselines.golub_kahan_qr` — our own implementation all
the way down) and lift its top-k triples.  Full reorthogonalization
keeps the Krylov bases orthonormal in floating point (the classic
Lanczos failure mode, covered by tests).

Complements :func:`repro.apps.truncated.randomized_svd`: Lanczos
converges faster per matrix-vector product on strongly decaying
spectra; the randomized sketch parallelizes better — both feed the
accelerator-friendly "few columns" inner problems.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.golub_kahan_qr import qr_iterate_bidiagonal
from repro.core.result import SVDResult
from repro.util.rng import default_rng
from repro.util.validation import as_float_matrix, check_positive_int

__all__ = ["lanczos_bidiagonalization", "lanczos_svd"]


def lanczos_bidiagonalization(
    a,
    steps: int,
    *,
    seed=None,
    reorthogonalize: bool = True,
):
    """l-step Golub-Kahan-Lanczos process.

    Returns ``(u, alphas, betas, v)`` with ``u``: (m, l), ``v``: (n, l)
    orthonormal and the *upper*-bidiagonal ``B_l`` given by diagonal
    *alphas* (length l) and superdiagonal *betas* (length l-1): the
    recurrences ``A v_j = alpha_j u_j + beta_{j-1} u_{j-1}`` and
    ``Aᵀ u_j = alpha_j v_j + beta_j v_{j+1}`` give
    ``U_lᵀ A V_l = B_l`` on the Krylov space.

    Parameters
    ----------
    a : array_like
        Input m x n matrix.
    steps : int
        Krylov steps l (at most min(m, n)).
    seed
        Starting-vector randomness.
    reorthogonalize : bool
        Full reorthogonalization against all previous basis vectors
        (O(l m) extra per step).  Without it, finite precision re-admits
        converged directions — demonstrated in the tests.
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    steps = check_positive_int(steps, name="steps")
    if steps > min(m, n):
        raise ValueError(f"steps={steps} exceeds min(m, n)={min(m, n)}")
    rng = default_rng(seed)

    v = np.zeros((n, steps))
    u = np.zeros((m, steps))
    alphas = np.zeros(steps)
    betas = np.zeros(max(steps - 1, 0))

    vj = rng.standard_normal(n)
    vj /= np.linalg.norm(vj)
    uj_prev = None
    for j in range(steps):
        v[:, j] = vj
        # u_j = A v_j - beta_{j-1} u_{j-1}
        w = a @ vj
        if j > 0:
            w -= betas[j - 1] * uj_prev
        if reorthogonalize and j > 0:
            w -= u[:, :j] @ (u[:, :j].T @ w)
        alpha = float(np.linalg.norm(w))
        if alpha == 0.0:
            # Exact breakdown: the Krylov space is invariant; restart
            # with a fresh random direction orthogonal to U so the
            # factorization stays well defined.
            w = rng.standard_normal(m)
            w -= u[:, :j] @ (u[:, :j].T @ w)
            alpha_restart = np.linalg.norm(w)
            if alpha_restart == 0.0:
                u = u[:, : j + 1]
                v = v[:, : j + 1]
                return u, alphas[: j + 1], betas[:j], v
            w /= alpha_restart
            alpha = 0.0
            uj = w
        else:
            uj = w / alpha
        alphas[j] = alpha
        u[:, j] = uj
        if j == steps - 1:
            break
        # v_{j+1} = Aᵀ u_j - alpha_j v_j
        z = a.T @ uj - alpha * vj
        if reorthogonalize:
            z -= v[:, : j + 1] @ (v[:, : j + 1].T @ z)
        beta = float(np.linalg.norm(z))
        if beta == 0.0:
            z = rng.standard_normal(n)
            z -= v[:, : j + 1] @ (v[:, : j + 1].T @ z)
            norm_z = np.linalg.norm(z)
            if norm_z == 0.0:
                u = u[:, : j + 1]
                v = v[:, : j + 1]
                return u, alphas[: j + 1], betas[:j], v
            z /= norm_z
            beta = 0.0
            vj = z
        else:
            vj = z / beta
        betas[j] = beta
        uj_prev = uj
    return u, alphas, betas, v


def lanczos_svd(
    a,
    k: int,
    *,
    extra_steps: int = 10,
    seed=None,
    engine: str | None = None,
    engine_opts=None,
) -> SVDResult:
    """Partial SVD: top-k triples via Lanczos bidiagonalization.

    Runs ``k + extra_steps`` Krylov steps (the Ritz values at the top
    of the spectrum converge first; the margin buys accuracy), then
    decomposes the small bidiagonal.  With ``engine=None`` (the
    default) that inner solve is the library's own bidiagonal QR
    iteration; naming an *engine* routes it through the same
    ``(engine, engine_opts)`` vocabulary as every other low-rank
    surface (:func:`repro.apps.base.make_solver` — registry engines
    plus ``"golub_reinsch"``), which is what lets the streaming
    drivers swap inner kernels without special-casing this baseline.
    """
    a = as_float_matrix(a, name="a")
    k = check_positive_int(k, name="k")
    if k > min(a.shape):
        raise ValueError(f"k={k} exceeds min(m, n)={min(a.shape)}")
    steps = min(k + extra_steps, min(a.shape))
    u_l, alphas, betas, v_l = lanczos_bidiagonalization(a, steps, seed=seed)
    l = len(alphas)

    if engine is not None:
        # Dense small upper bidiagonal through a registered engine.
        from repro.apps.base import make_solver

        bi = np.diag(alphas)
        if l > 1:
            bi[np.arange(l - 1), np.arange(1, l)] = betas[: l - 1]
        core = make_solver(engine, engine_opts)(bi)
        return SVDResult(
            s=core.s[:k].copy(),
            u=(u_l @ core.u)[:, :k].copy(),
            vt=(core.vt @ v_l.T)[:k, :].copy(),
            sweeps=core.sweeps,
            trace=core.trace,
            method=f"lanczos-{core.method}",
            converged=core.converged,
        )

    # B is upper bidiagonal: decompose it with the library's own QR
    # iteration, then lift: A ~ (U_l P) diag(d) (Qᵀ V_lᵀ).
    d, p, qt = qr_iterate_bidiagonal(alphas, betas, np.eye(l), np.eye(l))
    order = np.argsort(np.abs(d))[::-1]
    signs = np.sign(d[order])
    signs[signs == 0] = 1.0
    u = (u_l @ p[:, order]) * signs  # fold signs into U
    vt = qt[order, :] @ v_l.T
    s_sorted = np.abs(d[order])
    return SVDResult(
        s=s_sorted[:k].copy(),
        u=u[:, :k].copy(),
        vt=vt[:k, :].copy(),
        method="lanczos",
        converged=True,
    )
