"""Divide-and-conquer SVD (Cuppen / Gu-Eisenstat) — related work [18].

Section III cites divide-and-conquer iterations (Gu & Eisenstat) as the
other production route from a bidiagonal matrix to singular values.
This module implements the full pipeline from scratch:

1. Golub-Kahan bidiagonalization (reused from
   :mod:`repro.baselines.householder`),
2. the tridiagonal ``T = BᵀB`` (explicitly formed — B is bidiagonal so
   T is tridiagonal, no densification),
3. Cuppen's recursion on T: split into two tridiagonals plus a rank-one
   correction, solve children recursively, and merge by solving the
   *secular equation* ``1 + rho sum(z_i^2 / (d_i - lam)) = 0``,
4. deflation of negligible rank-one components and (near-)duplicate
   poles, with Givens rotations concentrating duplicate weight,
5. the Gu-Eisenstat device: after the roots are found, *recompute* the
   rank-one vector from the root/pole configuration (Löwner identity),
   which restores mutually orthogonal eigenvectors even when roots
   cluster — the insight that made D&C numerically viable.

Accuracy note: going through ``BᵀB`` squares the condition number, so
tiny singular values resolve to ``sqrt(eps) * sigma_max`` — same class
as the paper's covariance-cached algorithm, and contrasted against the
direct engines in the accuracy study.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.householder import bidiagonalize
from repro.core.result import SVDResult
from repro.core.symeig import jacobi_eigh
from repro.util.numerics import sort_svd
from repro.util.validation import as_float_matrix

__all__ = ["secular_roots", "cuppen_tridiagonal_eigh", "dc_svd"]

_BASE_SIZE = 16


def _secular_f(lam: float, d: np.ndarray, z2: np.ndarray, rho: float) -> float:
    return 1.0 + rho * float(np.sum(z2 / (d - lam)))


def secular_roots(d: np.ndarray, z: np.ndarray, rho: float) -> np.ndarray:
    """Eigenvalues of ``diag(d) + rho z zᵀ`` (d strictly ascending, rho > 0,
    all z_i nonzero) by safeguarded bisection on the secular equation.

    The i-th root lies strictly in (d_i, d_{i+1}); the last in
    (d_n, d_n + rho ||z||^2).  Bisection on the monotone-per-interval
    secular function is unconditionally convergent; 120 halvings reach
    the double-precision resolution of each bracket.
    """
    d = np.asarray(d, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    n = d.size
    z2 = z * z
    roots = np.empty(n)
    znorm2 = float(np.sum(z2))
    for i in range(n):
        if i < n - 1:
            lo, hi = float(d[i]), float(d[i + 1])
        else:
            lo, hi = float(d[n - 1]), float(d[n - 1] + rho * znorm2)
        # Bracket strictly inside the pole interval: one ulp off each
        # endpoint (a fixed relative nudge underflows for narrow
        # intervals and can land exactly on a pole, where the divided
        # term comes out +inf instead of the correct -inf).
        a = np.nextafter(lo, hi)
        b = np.nextafter(hi, lo)
        if not a < b:
            roots[i] = 0.5 * (lo + hi)
            continue
        # As lam -> d_i^+ the i-th term -> -inf, as lam -> d_{i+1}^- the
        # (i+1)-th term -> +inf: f crosses zero from below inside the
        # bracket (f is strictly increasing between consecutive poles).
        fa = _secular_f(a, d, z2, rho)
        fb = _secular_f(b, d, z2, rho)
        if fa >= 0:
            roots[i] = a
            continue
        if fb <= 0:
            roots[i] = b
            continue
        for _ in range(120):
            mid = 0.5 * (a + b)
            if not (a < mid < b):
                break
            if _secular_f(mid, d, z2, rho) < 0.0:
                a = mid
            else:
                b = mid
        roots[i] = 0.5 * (a + b)
    return roots


def _gu_eisenstat_z(d: np.ndarray, roots: np.ndarray, rho: float) -> np.ndarray:
    """Recompute |z| from the root/pole configuration (Löwner identity).

    With d and the interlacing roots both ascending
    (``d_i < roots_i < d_{i+1}``, ``roots_n > d_n``), the rank-one
    weight satisfies (LAPACK dlaed4 / Gu-Eisenstat 1995)::

        z_i^2 = (roots_n - d_i) / rho
                * prod_{j < i}  (roots_j - d_i) / (d_j     - d_i)
                * prod_{i <= j < n} (roots_j - d_i) / (d_{j+1} - d_i)

    Every paired ratio is positive and O(1), so the product is
    cancellation-free.  Using this ẑ in the eigenvector formula keeps
    the vectors numerically orthogonal even for clustered roots — the
    device that made divide-and-conquer viable.
    """
    n = d.size
    z2 = np.empty(n)
    for i in range(n):
        val = (roots[n - 1] - d[i]) / rho
        for j in range(i):
            val *= (roots[j] - d[i]) / (d[j] - d[i])
        for j in range(i, n - 1):
            val *= (roots[j] - d[i]) / (d[j + 1] - d[i])
        z2[i] = abs(val)
    return np.sqrt(z2)


def _rank_one_update(d: np.ndarray, z: np.ndarray, rho: float):
    """Eigendecomposition of ``diag(d) + rho z zᵀ`` with deflation.

    Returns ``(w, q)`` with columns of q the eigenvectors.  Handles
    rho of either sign (negated problems are solved as ``-(diag(-d)
    + |rho| z zᵀ)``), zero z components and duplicate d entries.
    """
    n = d.size
    if rho < 0:
        w, q = _rank_one_update(-d[::-1], z[::-1], -rho)
        return -w[::-1], q[::-1, :][:, ::-1]
    norm_scale = max(float(np.max(np.abs(d))), rho * float(z @ z), 1e-300)
    tol = 1e-14 * norm_scale

    # Sort poles ascending.
    order = np.argsort(d)
    d_s = d[order].copy()
    z_s = z[order].copy()

    # Deflation 1: duplicate poles — rotate weight onto one of the pair.
    givens: list[tuple[int, int, float, float]] = []
    for i in range(n - 1):
        if d_s[i + 1] - d_s[i] <= tol and abs(z_s[i]) > 0:
            r = np.hypot(z_s[i], z_s[i + 1])
            if r == 0:
                continue
            c, s = z_s[i + 1] / r, z_s[i] / r
            givens.append((i, i + 1, c, s))
            z_s[i + 1] = r
            z_s[i] = 0.0

    # Deflation 2: negligible z components keep their pole unchanged.
    active = np.abs(z_s) > tol
    idx_active = np.where(active)[0]
    idx_deflated = np.where(~active)[0]

    w = np.empty(n)
    q_s = np.zeros((n, n))
    w[idx_deflated] = d_s[idx_deflated]
    q_s[idx_deflated, idx_deflated] = 1.0

    if idx_active.size:
        da = d_s[idx_active]
        za = z_s[idx_active]
        roots = secular_roots(da, za, rho)
        z_hat = _gu_eisenstat_z(da, roots, rho) * np.sign(za)
        for col, lam in enumerate(roots):
            gaps = da - lam
            if np.any(gaps == 0.0):
                # A root landed exactly on a pole (possible only when
                # that pole's weight is at the deflation edge): the
                # eigenvector is that coordinate axis.
                vec = np.zeros_like(da)
                vec[np.argmin(np.abs(gaps))] = 1.0
                norm = 1.0
            else:
                vec = z_hat / gaps
                norm = np.linalg.norm(vec)
                if norm == 0 or not np.isfinite(norm):
                    vec = np.zeros_like(vec)
                    vec[col] = 1.0
                    norm = 1.0
            q_s[idx_active, idx_active[col]] = vec / norm
        w[idx_active] = roots

    # Undo the duplicate-pole rotations: with G [0, r]ᵀ = [z_i, z_j]ᵀ
    # (G = [[c, s], [-s, c]]), the original eigenvectors are G applied
    # to the rotated problem's rows.
    for i, j, c, s in reversed(givens):
        row_i = q_s[i, :].copy()
        q_s[i, :] = c * row_i + s * q_s[j, :]
        q_s[j, :] = -s * row_i + c * q_s[j, :]

    # Undo the sort.
    q = np.empty_like(q_s)
    q[order, :] = q_s
    # Sort eigenvalues ascending for the caller.
    asc = np.argsort(w)
    return w[asc], q[:, asc]


def cuppen_tridiagonal_eigh(diag, off):
    """Eigendecomposition of a symmetric tridiagonal matrix by D&C.

    Parameters
    ----------
    diag, off : array_like
        Diagonal (n) and off-diagonal (n-1) of T.

    Returns
    -------
    (w, q) : eigenvalues ascending, orthogonal eigenvectors.
    """
    diag = np.asarray(diag, dtype=np.float64).copy()
    off = np.asarray(off, dtype=np.float64).copy()
    n = diag.size
    if off.size != max(n - 1, 0):
        raise ValueError("off must have length n-1")
    if n <= _BASE_SIZE:
        t = np.diag(diag) + np.diag(off, 1) + np.diag(off, -1)
        return jacobi_eigh(t)

    m = n // 2
    beta = float(off[m - 1])
    if beta == 0.0:
        w1, q1 = cuppen_tridiagonal_eigh(diag[:m], off[: m - 1])
        w2, q2 = cuppen_tridiagonal_eigh(diag[m:], off[m:])
        w = np.concatenate([w1, w2])
        q = np.zeros((n, n))
        q[:m, :m] = q1
        q[m:, m:] = q2
        asc = np.argsort(w)
        return w[asc], q[:, asc]

    # T = blkdiag(T1', T2') + beta u uᵀ with u = e_m + e_{m+1} and the
    # touched diagonal entries reduced by beta.
    d1 = diag[:m].copy()
    d1[-1] -= beta
    d2 = diag[m:].copy()
    d2[0] -= beta
    w1, q1 = cuppen_tridiagonal_eigh(d1, off[: m - 1])
    w2, q2 = cuppen_tridiagonal_eigh(d2, off[m:])

    d = np.concatenate([w1, w2])
    z = np.concatenate([q1[-1, :], q2[0, :]])
    w, qz = _rank_one_update(d, z, beta)

    q = np.zeros((n, n))
    q[:m, : q1.shape[1]] = q1
    q[m:, q1.shape[1] :] = q2
    return w, q @ qz


def dc_svd(a, *, compute_uv: bool = True) -> SVDResult:
    """SVD by bidiagonalization + divide-and-conquer on ``T = BᵀB``.

    The Gu-Eisenstat related-work baseline ([18]); singular values are
    ``sqrt`` of T's eigenvalues, right vectors from the eigenvectors,
    left vectors via ``A v / sigma`` (columns below the rank cutoff
    completed to an orthonormal basis, as in the Hestenes engines).
    """
    a = as_float_matrix(a, name="a")
    m, n = a.shape
    if m < n:
        res = dc_svd(a.T, compute_uv=compute_uv)
        if compute_uv:
            return SVDResult(s=res.s, u=res.vt.T, vt=res.u.T,
                             method="divide_conquer", converged=True)
        return SVDResult(s=res.s, method="divide_conquer", converged=True)

    # Normalize to unit max magnitude: T = BᵀB squares the scale, so
    # inputs beyond ~1e154 would overflow the tridiagonal.  Singular
    # values scale linearly; factors are scale-invariant.
    a_scale = float(np.max(np.abs(a)))
    if a_scale > 0.0 and a_scale != 1.0:
        a = a / a_scale
    else:
        a_scale = 1.0

    u_b, d_b, e_b, vt_b = bidiagonalize(a, compute_uv=compute_uv)
    # T = BᵀB: tridiagonal with diag d_i^2 + e_{i-1}^2 and off-diagonal
    # (BᵀB)_{i, i+1} = d_i e_i (column i holds d_i and e_{i-1}).
    t_diag = d_b**2
    if n > 1:
        t_diag[1:] += e_b**2
        t_off = d_b[:-1] * e_b
    else:
        t_off = np.zeros(0)
    w, q = cuppen_tridiagonal_eigh(t_diag, t_off)
    w = np.where(w < 0, 0.0, w)
    sigma = np.sqrt(w)[::-1]  # descending
    q = q[:, ::-1]

    if not compute_uv:
        _, s, _ = sort_svd(None, sigma.copy(), None)
        return SVDResult(
            s=s[: min(m, n)] * a_scale, method="divide_conquer", converged=True
        )

    # Right vectors of B are q; lift through the bidiagonalization.
    vt = q.T @ vt_b
    # Left vectors: u_l = B q_l / sigma_l, computed through A's factors.
    b_mat = np.diag(d_b) + (np.diag(e_b, 1) if n > 1 else 0.0)
    bu = b_mat @ q
    u_small = np.zeros((n, n))
    cutoff = (sigma[0] if sigma.size else 0.0) * max(m, n) * np.finfo(np.float64).eps
    nonzero = sigma > cutoff
    u_small[:, nonzero] = bu[:, nonzero] / sigma[nonzero]
    from repro.core.hestenes import _complete_orthonormal

    zero_cols = np.linalg.norm(u_small, axis=0) < 0.5
    if np.any(zero_cols):
        u_small = _complete_orthonormal(u_small, zero_cols)
    u = u_b @ u_small
    u_sorted, s, vt_sorted = sort_svd(u, sigma.copy(), vt)
    return SVDResult(
        s=s[: min(m, n)] * a_scale,
        u=u_sorted[:, : min(m, n)],
        vt=vt_sorted[: min(m, n), :],
        method="divide_conquer", converged=True,
    )
