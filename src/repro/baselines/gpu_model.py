"""Timing models of the GPU comparators.

Two distinct GPU systems appear in the paper's evaluation:

* **Lahabar & Narayanan [7]** — Householder-based full SVD on an NVIDIA
  8800 (128 stream processors), the "GPU" series of Figs 7-8.  The
  qualitative anchors from the paper: slowest solution below ~512,
  "previous works only achieved speedups when the input matrices have
  dimensions greater than 1000".  Modelled as a saturating-rate machine
  with a large fixed launch/synchronization overhead (the "iterative
  thread synchronizations" the paper blames).
* **Kotas & Barhen [11]** — GPU Hestenes-Jacobi, quoted directly:
  "106.90 ms and 1022.92 ms to decompose a 128 x 128 and a 256 x 256
  matrix respectively, failed to achieve any speedup".  Modelled as the
  cubic interpolation through those two published points.  (Note the
  paper's Section VI-B cites these numbers as [12]; the reference list
  shows they belong to the GPU paper [11] — see DESIGN.md errata.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gkr_svd import gkr_flops
from repro.util.validation import check_positive_int

__all__ = ["GpuTimingModel", "GPU_8800_MODEL", "gpu_hestenes_seconds", "GPU_HESTENES_POINTS"]


@dataclass(frozen=True)
class GpuTimingModel:
    """Saturating-rate GPU model: ``t = overhead + flops / R(k)`` with
    ``R(k) = R_max * k^2 / (k^2 + k_half^2)`` — GPUs need large
    matrices to fill their thread blocks, so the effective rate rises
    quadratically before saturating."""

    name: str
    rate_max: float
    k_half: float
    overhead_s: float
    compute_uv: bool = True  # [7] computes the full factorization

    def rate(self, m: int, n: int) -> float:
        k = float(min(m, n))
        return self.rate_max * k * k / (k * k + self.k_half * self.k_half)

    def seconds(self, m: int, n: int) -> float:
        m = check_positive_int(m, name="m")
        n = check_positive_int(n, name="n")
        flops = gkr_flops(m, n, compute_uv=self.compute_uv)
        return self.overhead_s + flops / self.rate(m, n)


#: NVIDIA 8800 Householder SVD of [7]: 40 GFLOP/s saturated (the full
#: factorization keeps all 128 SPs busy at scale), half-rate at 1400
#: columns, 35 ms of launch + synchronization overhead.  Calibrated to
#: the paper's qualitative anchors: slowest curve below ~512, crosses
#: MATLAB between 512 and 1024 ("speedups only ... greater than 1000"),
#: and overtakes the FPGA beyond ~1024 — the orderings of Fig. 7.
GPU_8800_MODEL = GpuTimingModel(
    name="NVIDIA 8800 GPU [7] (model)",
    rate_max=40.0e9,
    k_half=1400.0,
    overhead_s=35e-3,
)

#: Published execution times of the GPU Hestenes implementation [11].
GPU_HESTENES_POINTS = {(128, 128): 106.90e-3, (256, 256): 1022.92e-3}


def gpu_hestenes_seconds(m: int, n: int) -> float:
    """Cubic interpolation through the two published [11] data points.

    ``t(n) = c3 * n^3 + c0`` fitted to the 128- and 256-column anchors,
    scaled linearly in m/n aspect (the method's work is m n^2-ish, and
    the published points are square).  Intended for the related-work
    comparison bench; extrapolation far beyond 256 columns is marked by
    raising ``ValueError`` above 1024.
    """
    m = check_positive_int(m, name="m")
    n = check_positive_int(n, name="n")
    if n > 1024 or m > 4096:
        raise ValueError(
            "gpu_hestenes_seconds extrapolates the two published points; "
            "refusing sizes beyond m=4096, n=1024"
        )
    t128 = GPU_HESTENES_POINTS[(128, 128)]
    t256 = GPU_HESTENES_POINTS[(256, 256)]
    c3 = (t256 - t128) / (256.0**3 - 128.0**3)
    c0 = t128 - c3 * 128.0**3
    # The affine fit's intercept is slightly negative; clamp to the
    # launch-overhead floor so small-n extrapolations stay physical.
    square = max(c3 * float(n) ** 3 + c0, 1e-3)
    return square * (float(m) / float(n))
