"""The non-caching Hestenes baseline (the [12]-style prior design).

The paper's algorithmic contribution over the earlier FPGA
Hestenes-Jacobi implementation is covariance *caching*: [12] recomputes
every pair's squared norms and covariance from the columns each sweep
("iterative design with duplicated computations"), costing three
length-m dot products per pair per sweep, while Algorithm 1 computes
them once and updates them in O(n) per rotation.

This module quantifies that ablation:

* :func:`plain_hestenes_svd` — runs the recompute-based reference
  implementation with a flop counter attached;
* :func:`recompute_ratio` — the analytic work ratio between the two
  strategies (the quantity the ablation benchmark sweeps);
* :func:`fixed_point_fpga_seconds` — timing anchor of the fixed-point
  design itself (24.3143 ms for its largest supported 32 x 127 matrix,
  with its hard 32-column / 128-row on-chip limit), for the related-work
  comparison of Section VI-B.
"""

from __future__ import annotations

from repro.core.convergence import ConvergenceCriterion
from repro.core.hestenes import FlopCounter, reference_svd
from repro.core.result import SVDResult
from repro.util.validation import check_positive_int

__all__ = [
    "plain_hestenes_svd",
    "recompute_ratio",
    "fixed_point_fpga_seconds",
    "FIXED_POINT_LIMIT",
]

#: The [12] design's on-chip size limit: "matrices with the size up to
#: 32 x 128 due to the limitation of on-chip memory".
FIXED_POINT_LIMIT = (128, 32)  # (max rows, max columns)

#: Published anchor: 24.3143 ms for the largest analyzed 32 x 127 matrix.
_FIXED_POINT_ANCHOR_SECONDS = 24.3143e-3
_FIXED_POINT_ANCHOR_SHAPE = (127, 32)


def plain_hestenes_svd(
    a, *, max_sweeps: int = 6, compute_uv: bool = False
) -> tuple[SVDResult, FlopCounter]:
    """Run the recompute-per-pair Hestenes SVD with work accounting.

    Returns ``(result, flops)`` where ``flops.dot_flops`` is exactly the
    work the paper's covariance caching eliminates.
    """
    flops = FlopCounter()
    res = reference_svd(
        a,
        compute_uv=compute_uv,
        criterion=ConvergenceCriterion(max_sweeps=max_sweeps, tol=None),
        flops=flops,
    )
    return res, flops


def recompute_ratio(m: int, n: int, sweeps: int = 6) -> float:
    """Analytic flop ratio: plain (recompute) over cached (Algorithm 1).

    Plain Hestenes per sweep and pair: three length-m dot products
    (``6m`` flops) *and* the eq. (11)-(12) column rotation (``6m``),
    every sweep.  Algorithm 1: one Gram phase
    (``2m`` flops x (pairs + n) dot products), column rotations in the
    first sweep only, and ``6(n - 2)`` flops of covariance updates per
    rotation every sweep.  The ratio grows with the aspect m/n and with
    the sweep count — caching wins big exactly in the tall-matrix
    regime Fig. 9 targets.
    """
    m = check_positive_int(m, name="m")
    n = check_positive_int(n, name="n")
    sweeps = check_positive_int(sweeps, name="sweeps")
    pairs = n * (n - 1) // 2
    plain = sweeps * pairs * (6.0 * m + 6.0 * m)
    cached = (
        2.0 * m * (pairs + n)  # Gram phase (all dot products, once)
        + 6.0 * m * pairs  # first-sweep column rotations
        + sweeps * pairs * 6.0 * max(n - 2, 0)  # covariance updates
    )
    return plain / cached


def fixed_point_fpga_seconds(m: int, n: int) -> float:
    """Timing model of the fixed-point FPGA design of [12].

    Anchored to the single published point (24.3143 ms at 32 columns x
    127 rows) and scaled by the method's dominant recompute work
    ``m * n^2 * sweeps``; raises for shapes beyond the design's on-chip
    capacity, reproducing its documented limitation.
    """
    m = check_positive_int(m, name="m")
    n = check_positive_int(n, name="n")
    max_m, max_n = FIXED_POINT_LIMIT
    if m > max_m or n > max_n:
        raise ValueError(
            f"the fixed-point design handles at most {max_m} rows x "
            f"{max_n} columns (requested {m} x {n})"
        )
    am, an = _FIXED_POINT_ANCHOR_SHAPE
    scale = (m * n * n) / (am * an * an)
    return _FIXED_POINT_ANCHOR_SECONDS * scale
