"""Operational CLI commands: ``serve-demo``, ``shard-demo``, ``stats``.

Split out of :mod:`repro.cli` (which stays focused on the modelling
commands) and registered into the same ``repro`` argument parser via
:func:`add_ops_commands`:

* ``serve-demo`` — drive the micro-batching SVD server with a traffic
  trace; ``--json`` emits the final metrics snapshot as machine-readable
  JSON on stdout (progress lines move to stderr).
* ``shard-demo`` — drive the multi-process sharded tier
  (:class:`repro.serve.shard.ShardedSVDServer`) with an open-loop
  Poisson arrival trace; reports throughput, loss accounting, and
  per-shard health, and spot-checks bit-identity against the direct
  solver.
* ``stats`` — render the process-wide metrics registry
  (:func:`repro.obs.metrics.get_registry`) as a text report or, with
  ``--prom``, Prometheus text exposition; ``--demo`` first runs a small
  workload so there is something to show; ``--watch N`` live-refreshes
  every N seconds until Ctrl-C.
* ``bench-compare`` — run the pinned benchmark suites of
  :mod:`repro.eval.benchgate` and gate against the committed
  ``BENCH_CORE.json`` / ``BENCH_SERVE.json`` baselines (``--update``
  rewrites them; ``--inject-slowdown`` is the self-test hook).
* ``lsi-demo`` — fit a small :class:`repro.apps.lsi.LsiIndex`, host it
  behind the serving tier, and run ``lsi_query`` / ``topk_svd`` task
  requests through the server, including an ``add_documents`` update
  that invalidates cached query results.
The observability commands (``slo-report``, ``events``, ``profile``,
``prof-compare``) live in :mod:`repro.cli_obs`.
"""

from __future__ import annotations

import json
import sys

__all__ = ["add_ops_commands"]


def _cmd_serve_demo(args) -> int:
    import time

    import numpy as np

    from repro.core.svd import hestenes_svd
    from repro.serve import SVDServer
    from repro.workloads import random_matrix

    info = sys.stderr if args.json else sys.stdout

    rng_shapes = [(args.rows, args.cols), (args.cols, args.cols),
                  (2 * args.rows, args.cols // 2 or 1)]
    unique = [
        random_matrix(*rng_shapes[i % len(rng_shapes)], seed=args.seed + i)
        for i in range(max(args.requests // 2, 1))
    ]
    trace = unique + unique[: max(args.requests - len(unique), 0)]
    print(f"serve-demo: {len(trace)} requests over shapes "
          f"{sorted(set(a.shape for a in trace))} "
          f"({len(trace) - len(unique)} repeats)", file=info)
    prec_opts = (
        {"precision": args.precision} if args.precision != "fp64" else {}
    )
    engine = args.engine
    if prec_opts and engine == "core":
        # "core" resolves to the blocked method, which carries no
        # reduced-precision schedule; the demo routes to the engine
        # that does.  An explicit non-vectorized --engine still gets
        # the submit-time typed error.
        engine = "vectorized"
        print(f"--precision {args.precision}: serving on the vectorized "
              f"engine", file=info)
    start = time.perf_counter()
    with SVDServer(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        workers=args.workers,
        default_engine=engine,
        compute_uv=not args.values_only,
        **prec_opts,
    ) as srv:
        first = [h.result(timeout=300.0) for h in srv.submit_many(unique)]
        rest = [h.result(timeout=300.0)
                for h in srv.submit_many(trace[len(unique):])]
        stats = srv.stats()
    elapsed = time.perf_counter() - start
    responses = first + rest
    bad = [r for r in responses if not r.ok]
    if bad:
        print(f"{len(bad)} request(s) failed; first: {bad[0].error}",
              file=info)
        return 1
    check_method = {"method": engine} if engine != "core" else {}
    check = hestenes_svd(unique[0], compute_uv=not args.values_only,
                         **check_method, **prec_opts)
    identical = bool(np.array_equal(responses[0].result.s, check.s))
    if args.json:
        payload = {
            "requests": len(responses),
            "elapsed_s": elapsed,
            "throughput_rps": len(responses) / elapsed,
            "identical": identical,
            "stats": stats,
        }
        health = responses[0].health
        if health is not None:
            payload["first_response_health"] = health.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if identical else 1
    lat = stats["histograms"]["latency_s"]
    bat = stats["histograms"]["batch_size"]
    cache = stats["cache"]
    print(f"served {len(responses)} requests in {elapsed:.3f} s "
          f"({len(responses) / elapsed:,.0f} req/s)")
    print(f"  latency   : p50 {lat['p50'] * 1e3:.2f} ms   "
          f"p95 {lat['p95'] * 1e3:.2f} ms   p99 {lat['p99'] * 1e3:.2f} ms")
    print(f"  batching  : {stats['counters']['batches_dispatched']} batches, "
          f"mean size {bat['mean']:.2f}, "
          f"{stats['counters'].get('coalesced_requests', 0)} requests coalesced")
    print(f"  cache     : {cache['hits']} hits / {cache['lookups']} lookups "
          f"(hit rate {cache['hit_rate']:.1%})")
    used = {
        k[len("engine_"):-len("_requests")]: v
        for k, v in stats["counters"].items()
        if k.startswith("engine_") and k.endswith("_requests")
    }
    engines = " ".join(f"{k}={v}" for k, v in sorted(used.items())) or "none"
    print(f"  engines   : {engines} degradations={stats['degradations']}")
    print(f"  verification: served result bit-identical to direct solver: "
          f"{identical}")
    return 0 if identical else 1


def _cmd_shard_demo(args) -> int:
    import numpy as np

    from repro.core.svd import hestenes_svd
    from repro.serve.shard import ShardedSVDServer
    from repro.workloads import (
        poisson_arrivals,
        random_matrix,
        replay_arrivals,
    )

    info = sys.stderr if args.json else sys.stdout
    matrices = [random_matrix(args.rows, args.cols, seed=args.seed + i)
                for i in range(8)]
    arrivals = poisson_arrivals(args.rate, args.duration, seed=args.seed)
    print(f"shard-demo: {len(arrivals)} poisson arrivals over "
          f"{args.duration:g} s at {args.rate:g} req/s across "
          f"{args.shards} shard worker(s)", file=info)
    prec_opts = (
        {"precision": args.precision} if args.precision != "fp64" else {}
    )
    engine = args.engine
    if prec_opts and engine == "core":
        # Same routing as serve-demo: "core" means the blocked method,
        # which rejects reduced precision at submit time.
        engine = "vectorized"
        print(f"--precision {args.precision}: serving on the vectorized "
              f"engine", file=info)
    with ShardedSVDServer(
        shards=args.shards,
        max_inflight=args.max_inflight,
        default_engine=engine,
        compute_uv=not args.values_only,
        **prec_opts,
    ) as srv:
        report = replay_arrivals(srv, matrices, arrivals)
        stats = srv.stats()
    check_method = {"method": engine} if engine != "core" else {}
    check = hestenes_svd(matrices[0], compute_uv=not args.values_only,
                         **check_method, **prec_opts)
    with ShardedSVDServer(shards=1, default_engine=engine,
                          cache_bytes=None, worker_cache_bytes=None,
                          compute_uv=not args.values_only,
                          **prec_opts) as one:
        served = one.submit(matrices[0]).result(timeout=120.0)
    identical = (served.ok
                 and bool(np.array_equal(served.result.s, check.s)))
    summary = report.summary()
    shard_rows = [
        {"id": s["id"], "alive": s["alive"], "generation": s["generation"]}
        for s in stats["shards"]
    ]
    ok = identical and not (report.errors or report.timeouts)
    if args.json:
        print(json.dumps({"replay": summary, "identical": identical,
                          "shards": shard_rows}, indent=2, sort_keys=True))
        return 0 if ok else 1
    print(f"served {report.completed}/{report.submitted} admitted requests "
          f"({report.rejected} rejected 429, {report.errors} errors) "
          f"at {report.throughput_rps:,.0f} req/s")
    print(f"  latency   : p50 {summary['p50_s'] * 1e3:.2f} ms   "
          f"p99 {summary['p99_s'] * 1e3:.2f} ms")
    print(f"  shards    : " + " ".join(
        f"{r['id']}={'up' if r['alive'] else 'DOWN'}(gen {r['generation']})"
        for r in shard_rows))
    print(f"  verification: sharded result bit-identical to direct solver: "
          f"{identical}")
    return 0 if ok else 1


def _cmd_stats(args) -> int:
    from repro.obs.exporters import metrics_to_prometheus
    from repro.obs.metrics import get_registry

    if args.demo:
        from repro.core.svd import METHODS, hestenes_svd
        from repro.hw.timing_model import estimate_cycles
        from repro.workloads import random_matrix

        a = random_matrix(24, 12, seed=0)
        for method in METHODS:
            hestenes_svd(a, method=method, compute_uv=False)
        estimate_cycles(128, 128)
        print(f"stats --demo: ran {len(METHODS)} engines + the cycle model "
              f"on a 24 x 12 matrix", file=sys.stderr)
    registry = get_registry()

    def render() -> str:
        if args.prom:
            text = metrics_to_prometheus(registry)
            return text if text.endswith("\n") else text + "\n"
        return registry.render_text() + "\n"

    if not args.watch:
        print(render(), end="")
        return 0
    # Live-refresh mode, matching `repro events --follow` ergonomics:
    # clear + redraw every N seconds until Ctrl-C.
    import time

    try:
        while True:
            sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(
                f"repro stats  (refreshing every {args.watch:g} s, "
                f"Ctrl-C to exit)\n\n"
            )
            sys.stdout.write(render())
            sys.stdout.flush()
            time.sleep(args.watch)
    except KeyboardInterrupt:
        print()
        return 0


#: The lsi-demo corpus: two clearly separated topics so a rank-2
#: index retrieves cleanly, plus an update batch for add_documents.
_DEMO_DOCS = [
    "fpga hardware acceleration of matrix decomposition",
    "hardware architectures for fast signal processing",
    "matrix decomposition with jacobi rotations on hardware",
    "systolic arrays for singular value decomposition",
    "gardening tips for tomato plants",
    "growing tomato and basil plants in summer",
    "watering schedule for summer gardening",
]
_DEMO_UPDATE = ["pruning tomato plants in the summer garden"]


def _cmd_lsi_demo(args) -> int:
    from repro.apps.lsi import LsiIndex
    from repro.serve import SVDServer
    from repro.stream.serving import (
        decode_lsi_hits,
        index_version,
        register_index,
        unregister_index,
    )

    info = sys.stderr if args.json else sys.stdout
    index = LsiIndex(rank=args.rank, engine=args.engine).fit(_DEMO_DOCS)
    register_index("demo", index)
    print(f"lsi-demo: rank-{args.rank} index over {len(_DEMO_DOCS)} "
          f"documents ({index.term_space.shape[0]} terms), hosted as "
          f"'demo' v{index_version('demo')}", file=info)
    try:
        with SVDServer() as srv:
            def ask(query):
                q = index.tdm.query_vector(query).reshape(-1, 1)
                resp = srv.submit(q, task="lsi_query", index="demo",
                                  top_k=args.top_k).result(timeout=120.0)
                if not resp.ok:
                    raise RuntimeError(f"query failed: {resp.error}")
                return resp, decode_lsi_hits(resp.result)

            rounds = []
            for query in (args.query, args.query, "hardware svd"):
                resp, hits = ask(query)
                rounds.append({
                    "query": query, "cache_hit": resp.cache_hit,
                    "hits": [{"doc": d, "score": round(score, 4),
                              "text": _DEMO_DOCS[d]} for d, score in hits],
                })
            index.add_documents(_DEMO_UPDATE)
            resp, hits = ask(args.query)
            rounds.append({
                "query": args.query, "cache_hit": resp.cache_hit,
                "after_update": True,
                "hits": [{"doc": d, "score": round(score, 4),
                          "text": (_DEMO_DOCS + _DEMO_UPDATE)[d]}
                         for d, score in hits],
            })
            topk = srv.submit(index.tdm.matrix, task="topk_svd",
                              rank=args.rank).result(timeout=120.0)
            queries = srv.metrics.counter("task_lsi_query_requests").value
    finally:
        unregister_index("demo")
    ok = (rounds[1]["cache_hit"] and not rounds[3]["cache_hit"]
          and topk.ok)
    if args.json:
        print(json.dumps({
            "rounds": rounds, "lsi_query_requests": queries,
            "topk_spectrum": list(topk.result.s), "ok": ok,
        }, indent=2, sort_keys=True))
        return 0 if ok else 1
    for r in rounds:
        tag = " (after add_documents)" if r.get("after_update") else ""
        print(f"query '{r['query']}'{tag}: "
              f"cache_hit={r['cache_hit']}")
        for h in r["hits"]:
            print(f"    doc {h['doc']}  score {h['score']:+.4f}  "
                  f"{h['text']}")
    print(f"  served {queries} lsi_query requests; repeat query was a "
          f"cache hit, update invalidated it: {ok}")
    print(f"  topk_svd on the term-document matrix (rank {args.rank}): "
          f"spectrum {[round(float(s), 3) for s in topk.result.s]}")
    return 0 if ok else 1


def _cmd_bench_compare(args) -> int:
    from pathlib import Path

    from repro.eval import benchgate

    suites = {
        "core": (benchgate.run_core, benchgate.CORE_BASELINE),
        "serve": (benchgate.run_serve, benchgate.SERVE_BASELINE),
    }
    wanted = list(suites) if args.suite == "all" else [args.suite]
    base_dir = Path(args.baseline_dir)
    failed = False
    for name in wanted:
        runner, filename = suites[name]
        path = base_dir / filename
        print(f"[{name}] running suite "
              f"({'quick' if args.quick else 'full'} mode):")
        current = runner(quick=args.quick, log=print)
        if args.inject_slowdown != 1.0:
            current = benchgate.scale_metrics(current, args.inject_slowdown)
            print(f"[{name}] injected x{args.inject_slowdown:g} slowdown "
                  f"into the measured metrics")
        if args.update:
            print(f"[{name}] baseline written to "
                  f"{benchgate.write_baseline(current, path)}")
            continue
        try:
            baseline = benchgate.load_baseline(path)
        except FileNotFoundError:
            print(f"[{name}] no baseline at {path}; run "
                  f"`repro bench-compare --update` (make bench-baseline) "
                  f"first")
            failed = True
            continue
        rows, ok = benchgate.compare(current, baseline, args.tolerance)
        print(benchgate.format_rows(rows, args.tolerance))
        print(f"[{name}] {'ok' if ok else 'REGRESSION'} "
              f"(probe {baseline['probe_s'] * 1e3:.2f} ms -> "
              f"{current['probe_s'] * 1e3:.2f} ms)")
        failed = failed or not ok
    return 1 if failed else 0


def add_ops_commands(sub, methods) -> None:
    """Register the operational subcommands on an argparse subparsers."""
    sd = sub.add_parser("serve-demo",
                        help="drive the micro-batching SVD server")
    sd.add_argument("--requests", type=int, default=200,
                    help="trace length (half unique, half repeats)")
    sd.add_argument("--rows", type=int, default=24)
    sd.add_argument("--cols", type=int, default=12)
    sd.add_argument("--seed", type=int, default=0)
    sd.add_argument("--workers", type=int, default=4)
    sd.add_argument("--max-batch", type=int, default=8)
    sd.add_argument("--max-wait-ms", type=float, default=2.0)
    sd.add_argument("--engine", default="core",
                    choices=("core", *methods),
                    help="default serving engine for the trace")
    sd.add_argument("--precision", default="fp64",
                    choices=("fp64", "mixed", "fp32"),
                    help="working-precision schedule applied to every "
                         "request (vectorized engine)")
    sd.add_argument("--values-only", action="store_true")
    sd.add_argument("--json", action="store_true",
                    help="emit the final metrics snapshot as JSON on "
                         "stdout (progress lines go to stderr)")
    sd.set_defaults(func=_cmd_serve_demo)

    shd = sub.add_parser("shard-demo",
                         help="drive the multi-process sharded SVD tier")
    shd.add_argument("--shards", type=int, default=2)
    shd.add_argument("--rate", type=float, default=40.0,
                     help="offered poisson arrival rate [req/s]")
    shd.add_argument("--duration", type=float, default=2.0,
                     help="load window [s]")
    shd.add_argument("--rows", type=int, default=32)
    shd.add_argument("--cols", type=int, default=16)
    shd.add_argument("--seed", type=int, default=0)
    shd.add_argument("--max-inflight", type=int, default=32,
                     help="per-shard admission depth (429 beyond it)")
    shd.add_argument("--engine", default="core",
                     choices=("core", *methods),
                     help="default serving engine for the trace")
    shd.add_argument("--precision", default="fp64",
                     choices=("fp64", "mixed", "fp32"),
                     help="working-precision schedule applied to every "
                          "request (vectorized engine)")
    shd.add_argument("--values-only", action="store_true")
    shd.add_argument("--json", action="store_true",
                     help="emit the replay report as JSON on stdout "
                          "(progress lines go to stderr)")
    shd.set_defaults(func=_cmd_shard_demo)

    st = sub.add_parser("stats",
                        help="render the process-wide metrics registry")
    st.add_argument("--prom", action="store_true",
                    help="Prometheus text exposition instead of the "
                         "fixed-width report")
    st.add_argument("--demo", action="store_true",
                    help="run a small workload first so the registry "
                         "has content")
    st.add_argument("--watch", type=float, default=0.0, metavar="N",
                    help="live-refresh mode: clear + redraw every N "
                         "seconds until Ctrl-C")
    st.set_defaults(func=_cmd_stats)

    ld = sub.add_parser("lsi-demo",
                        help="serve LSI queries from a hosted index")
    ld.add_argument("--rank", type=int, default=2,
                    help="latent dimensions of the index")
    ld.add_argument("--engine", default="blocked",
                    choices=methods,
                    help="Hestenes engine that factorizes the index")
    ld.add_argument("--query", default="tomato gardening in summer",
                    help="query text (issued twice to show caching)")
    ld.add_argument("--top-k", type=int, default=3)
    ld.add_argument("--json", action="store_true",
                    help="emit the query rounds as JSON on stdout "
                         "(progress lines go to stderr)")
    ld.set_defaults(func=_cmd_lsi_demo)

    bc = sub.add_parser("bench-compare",
                        help="benchmark regression gate vs BENCH_*.json")
    bc.add_argument("--suite", choices=("core", "serve", "all"),
                    default="all")
    bc.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed probe-normalized slowdown (0.20 = 20%%)")
    bc.add_argument("--baseline-dir", default=".",
                    help="directory holding BENCH_CORE.json/BENCH_SERVE.json")
    bc.add_argument("--quick", action="store_true",
                    help="fewer repetitions (same workloads)")
    bc.add_argument("--update", action="store_true",
                    help="rewrite the baselines instead of comparing")
    bc.add_argument("--inject-slowdown", type=float, default=1.0,
                    metavar="FACTOR",
                    help="multiply measured metrics by FACTOR (gate "
                         "self-test; 2.0 must fail)")
    bc.set_defaults(func=_cmd_bench_compare)
