"""Observability CLI commands: ``slo-report`` and ``events``.

Registered into the same ``repro`` argument parser as the modelling
and operational commands, via :func:`add_obs_commands`:

* ``slo-report`` — evaluate the process-global SLO engine
  (:func:`repro.obs.slo.get_slo_engine`): per-objective error budgets,
  burn-rate alert states, and an overall verdict.  ``--replay`` first
  drives a short sharded replay so the objectives have traffic to
  judge, and attaches the replay's own deterministic scorecard
  (:meth:`repro.workloads.driver.ReplayReport.score_slos`).
* ``events`` — print the process-global structured event log
  (:func:`repro.obs.events.get_event_log`) as JSONL; ``--follow``
  streams new events live, ``--input`` reads a previously written
  JSONL file (e.g. a log mirror or a flight-recorder bundle's event
  stream) instead, ``--trace`` filters to one request's narrative.
* ``profile`` — run an instrumented engine (or streaming) workload
  under the sampling profiler (:mod:`repro.obs.prof`) and report the
  span-phase breakdown; ``--folded`` writes collapsed-flamegraph
  stacks, ``--chrome`` writes a Chrome trace with the profile counter
  track, ``--alloc`` adds tracemalloc peak-heap attribution for the
  streaming stages.
* ``prof-compare`` — run the instrumented profiling workload of
  :mod:`repro.eval.profgate` and gate per-phase CPU cost against the
  committed ``PROF_CORE.json`` baseline (``--update`` rewrites it;
  ``--inject-slowdown`` is the gate self-test hook, mirroring
  ``bench-compare``).
"""

from __future__ import annotations

import json
import sys

__all__ = ["add_obs_commands"]


def _render_slo_report(report: dict) -> None:
    for o in report["objectives"]:
        status = "MET " if o["met"] else "MISS"
        thr = (f" (<= {o['threshold'] * 1e3:g} ms)"
               if o.get("threshold") is not None else "")
        print(f"[{status}] {o['name']}: target {o['target']:.3%}{thr} "
              f"over {o['window_s']:g} s")
        print(f"       {o['total']} samples, good {o['good_fraction']:.3%}, "
              f"budget consumed {o['budget_consumed']:.1%} "
              f"(remaining {o['budget_remaining']:.1%})")
        if "p99" in o:
            print(f"       p50 {o['p50'] * 1e3:.2f} ms   "
                  f"p99 {o['p99'] * 1e3:.2f} ms   "
                  f"p999 {o['p999'] * 1e3:.2f} ms")
        for a in o["alerts"]:
            if a["firing"]:
                print(f"       ALERT[{a['pair']}] burn rate "
                      f"{a['short_burn_rate']:.1f}x / "
                      f"{a['long_burn_rate']:.1f}x >= {a['factor']:g}x")
    print(f"overall: {'ok' if report['ok'] else 'VIOLATION'} "
          f"({len(report['firing_alerts'])} alert(s) firing)")


def _cmd_slo_report(args) -> int:
    from repro.obs.slo import get_slo_engine

    replay_report = None
    if args.replay:
        from repro.serve.shard import ShardedSVDServer
        from repro.workloads import (
            poisson_arrivals,
            random_matrix,
            replay_arrivals,
        )

        info = sys.stderr if args.json else sys.stdout
        matrices = [random_matrix(args.rows, args.cols, seed=args.seed + i)
                    for i in range(4)]
        arrivals = poisson_arrivals(args.rate, args.duration, seed=args.seed)
        print(f"slo-report: replaying {len(arrivals)} poisson arrivals over "
              f"{args.duration:g} s across {args.shards} shard worker(s)",
              file=info)
        with ShardedSVDServer(shards=args.shards, compute_uv=False) as srv:
            replay_report = replay_arrivals(srv, matrices, arrivals)
    report = get_slo_engine().report()
    if replay_report is not None:
        report["replay"] = replay_report.summary()
        report["replay_scorecard"] = replay_report.score_slos()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    _render_slo_report(report)
    if replay_report is not None:
        card = report["replay_scorecard"]
        print("replay scorecard (this replay only):")
        _render_slo_report(card)
    return 0


def _cmd_events(args) -> int:
    import queue

    from repro.obs.events import get_event_log, read_jsonl

    def matches(ev) -> bool:
        return not args.trace or ev.trace_id == args.trace

    def show(ev) -> None:
        print(json.dumps(ev.to_dict(), sort_keys=True), flush=True)

    if args.input:
        for ev in read_jsonl(args.input):
            if matches(ev):
                show(ev)
        return 0
    log = get_event_log()
    if log is None:
        print("no process event log installed", file=sys.stderr)
        return 1
    stream: queue.Queue | None = None
    if args.follow:
        stream = queue.Queue()
        log.subscribe(stream.put)
    shown = set()
    if args.demo:
        from repro.serve import SVDServer
        from repro.workloads import random_matrix

        with SVDServer(workers=2) as srv:
            handles = srv.submit_many(
                [random_matrix(16, 8, seed=i) for i in range(4)],
                compute_uv=False)
            for handle in handles:
                handle.result(timeout=60.0)
    for ev in log.events():
        if matches(ev):
            show(ev)
            shown.add(id(ev))
    if stream is None:
        return 0
    import time as _time

    deadline = (_time.monotonic() + args.follow_s
                if args.follow_s is not None else None)
    try:
        while True:
            timeout = None
            if deadline is not None:
                timeout = deadline - _time.monotonic()
                if timeout <= 0:
                    break
            try:
                ev = stream.get(timeout=timeout)
            except queue.Empty:
                break
            if matches(ev) and id(ev) not in shown:
                show(ev)
    except KeyboardInterrupt:
        pass
    finally:
        log.unsubscribe(stream.put)
    return 0


def _cmd_profile(args) -> int:
    from repro.core.svd import hestenes_svd
    from repro.obs.prof import (
        AllocationProfiler,
        SampleProfiler,
        use_alloc_profiler,
    )
    from repro.obs.tracer import Tracer, use_tracer
    from repro.workloads import random_matrix

    info = sys.stderr if args.json else sys.stdout
    profiler = SampleProfiler(hz=args.hz)
    tracer = Tracer(detail="round")
    alloc = AllocationProfiler() if args.alloc else None

    def workload() -> None:
        a = random_matrix(args.n, args.n, seed=args.seed)
        for _ in range(args.runs):
            if args.stream:
                from repro.stream.drivers import topk_svd

                topk_svd(a, min(8, args.n), driver="merge",
                         block_size=max(args.n // 8, 4))
            else:
                hestenes_svd(a, method=args.engine, compute_uv=True)

    print(f"profile: {args.runs} x "
          f"{'topk_svd' if args.stream else args.engine} at n={args.n}, "
          f"sampling at {args.hz:g} Hz", file=info)
    workload()  # warm BLAS/caches outside the profiled window
    with use_tracer(tracer), profiler:
        if alloc is not None:
            with use_alloc_profiler(alloc):
                workload()
        else:
            workload()
    profile = profiler.profile()
    if args.folded:
        profile.write_folded(args.folded)
        print(f"folded stacks written to {args.folded}", file=info)
    if args.chrome:
        from repro.obs.exporters import write_chrome_trace

        write_chrome_trace(args.chrome, tracer, profile=profile)
        print(f"chrome trace (with profile counters) written to "
              f"{args.chrome}", file=info)
    if args.json:
        payload = {"profile": profile.summary()}
        if alloc is not None:
            payload["allocation"] = alloc.summary()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(profile.render_text())
    if alloc is not None:
        print(alloc.render_text())
    return 0


def _cmd_prof_compare(args) -> int:
    from pathlib import Path

    from repro.eval import profgate

    path = Path(args.baseline_dir) / profgate.CORE_BASELINE
    print(f"[prof-core] running instrumented workload "
          f"({'quick' if args.quick else 'full'} mode):")
    current = profgate.run_core(quick=args.quick, log=print)
    if args.inject_slowdown != 1.0:
        phase = args.inject_phase or profgate.hottest_phase(current)
        current = profgate.scale_phase(current, phase, args.inject_slowdown)
        print(f"[prof-core] injected x{args.inject_slowdown:g} slowdown "
              f"into {phase}")
    if args.update:
        print(f"[prof-core] baseline written to "
              f"{profgate.write_baseline(current, path)}")
        return 0
    try:
        baseline = profgate.load_baseline(path)
    except FileNotFoundError:
        print(f"[prof-core] no baseline at {path}; run "
              f"`repro prof-compare --update` (make prof-baseline) first")
        return 1
    rows, ok = profgate.compare(current, baseline, args.tolerance)
    print(profgate.format_rows(rows, args.tolerance))
    print(f"[prof-core] {'ok' if ok else 'REGRESSION'} "
          f"(probe {baseline['probe_s'] * 1e3:.2f} ms -> "
          f"{current['probe_s'] * 1e3:.2f} ms)")
    return 0 if ok else 1


def add_obs_commands(sub) -> None:
    """Register the observability subcommands on an argparse subparsers."""
    sr = sub.add_parser("slo-report",
                        help="evaluate the serving SLOs (error budgets, "
                             "burn-rate alerts)")
    sr.add_argument("--replay", action="store_true",
                    help="drive a short sharded replay first so the "
                         "objectives have traffic to judge")
    sr.add_argument("--shards", type=int, default=2)
    sr.add_argument("--rate", type=float, default=40.0,
                    help="replay poisson arrival rate [req/s]")
    sr.add_argument("--duration", type=float, default=1.0,
                    help="replay load window [s]")
    sr.add_argument("--rows", type=int, default=24)
    sr.add_argument("--cols", type=int, default=12)
    sr.add_argument("--seed", type=int, default=0)
    sr.add_argument("--json", action="store_true",
                    help="emit the full report (and replay scorecard) "
                         "as JSON on stdout")
    sr.set_defaults(func=_cmd_slo_report)

    ev = sub.add_parser("events",
                        help="print the structured event log as JSONL")
    ev.add_argument("--follow", action="store_true",
                    help="stream new events live (Ctrl-C to stop)")
    ev.add_argument("--follow-s", type=float, default=None, metavar="S",
                    help="with --follow: stop after S seconds instead "
                         "of waiting for Ctrl-C")
    ev.add_argument("--trace", default=None, metavar="TRACE_ID",
                    help="only events carrying this trace id")
    ev.add_argument("--input", default=None, metavar="FILE",
                    help="read a JSONL event file (e.g. a log mirror) "
                         "instead of the in-process log")
    ev.add_argument("--demo", action="store_true",
                    help="run a small serving workload first so the log "
                         "has content")
    ev.set_defaults(func=_cmd_events)

    pf = sub.add_parser("profile",
                        help="sample an instrumented workload and report "
                             "the span-phase breakdown")
    pf.add_argument("--engine", default="vectorized",
                    help="engine for the profiled decompositions")
    pf.add_argument("--n", type=int, default=160,
                    help="matrix size of the profiled workload")
    pf.add_argument("--runs", type=int, default=6,
                    help="decompositions inside the profiled window")
    pf.add_argument("--hz", type=float, default=200.0,
                    help="sampling rate of the background profiler")
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--stream", action="store_true",
                    help="profile the streaming topk_svd driver instead "
                         "of a dense engine")
    pf.add_argument("--alloc", action="store_true",
                    help="also attribute tracemalloc peak heap per phase")
    pf.add_argument("--folded", default=None, metavar="FILE",
                    help="write collapsed-flamegraph stacks to FILE")
    pf.add_argument("--chrome", default=None, metavar="FILE",
                    help="write a Chrome trace (spans + profile counter "
                         "track) to FILE")
    pf.add_argument("--json", action="store_true",
                    help="emit the profile summary as JSON on stdout")
    pf.set_defaults(func=_cmd_profile)

    pc = sub.add_parser("prof-compare",
                        help="phase-share profiling gate vs PROF_CORE.json")
    pc.add_argument("--tolerance", type=float, default=0.60,
                    help="allowed probe-normalized per-phase cost growth "
                         "(0.60 = 60%%)")
    pc.add_argument("--baseline-dir", default=".",
                    help="directory holding PROF_CORE.json")
    pc.add_argument("--quick", action="store_true",
                    help="fewer instrumented runs (same workload)")
    pc.add_argument("--update", action="store_true",
                    help="rewrite the baseline instead of comparing")
    pc.add_argument("--inject-slowdown", type=float, default=1.0,
                    metavar="FACTOR",
                    help="multiply one phase's cost by FACTOR (gate "
                         "self-test; 2.0 on the hottest phase must fail)")
    pc.add_argument("--inject-phase", default=None, metavar="PHASE",
                    help="phase for --inject-slowdown (default: hottest)")
    pc.set_defaults(func=_cmd_prof_compare)
