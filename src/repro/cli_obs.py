"""Observability CLI commands: ``slo-report`` and ``events``.

Registered into the same ``repro`` argument parser as the modelling
and operational commands, via :func:`add_obs_commands`:

* ``slo-report`` — evaluate the process-global SLO engine
  (:func:`repro.obs.slo.get_slo_engine`): per-objective error budgets,
  burn-rate alert states, and an overall verdict.  ``--replay`` first
  drives a short sharded replay so the objectives have traffic to
  judge, and attaches the replay's own deterministic scorecard
  (:meth:`repro.workloads.driver.ReplayReport.score_slos`).
* ``events`` — print the process-global structured event log
  (:func:`repro.obs.events.get_event_log`) as JSONL; ``--follow``
  streams new events live, ``--input`` reads a previously written
  JSONL file (e.g. a log mirror or a flight-recorder bundle's event
  stream) instead, ``--trace`` filters to one request's narrative.
"""

from __future__ import annotations

import json
import sys

__all__ = ["add_obs_commands"]


def _render_slo_report(report: dict) -> None:
    for o in report["objectives"]:
        status = "MET " if o["met"] else "MISS"
        thr = (f" (<= {o['threshold'] * 1e3:g} ms)"
               if o.get("threshold") is not None else "")
        print(f"[{status}] {o['name']}: target {o['target']:.3%}{thr} "
              f"over {o['window_s']:g} s")
        print(f"       {o['total']} samples, good {o['good_fraction']:.3%}, "
              f"budget consumed {o['budget_consumed']:.1%} "
              f"(remaining {o['budget_remaining']:.1%})")
        if "p99" in o:
            print(f"       p50 {o['p50'] * 1e3:.2f} ms   "
                  f"p99 {o['p99'] * 1e3:.2f} ms   "
                  f"p999 {o['p999'] * 1e3:.2f} ms")
        for a in o["alerts"]:
            if a["firing"]:
                print(f"       ALERT[{a['pair']}] burn rate "
                      f"{a['short_burn_rate']:.1f}x / "
                      f"{a['long_burn_rate']:.1f}x >= {a['factor']:g}x")
    print(f"overall: {'ok' if report['ok'] else 'VIOLATION'} "
          f"({len(report['firing_alerts'])} alert(s) firing)")


def _cmd_slo_report(args) -> int:
    from repro.obs.slo import get_slo_engine

    replay_report = None
    if args.replay:
        from repro.serve.shard import ShardedSVDServer
        from repro.workloads import (
            poisson_arrivals,
            random_matrix,
            replay_arrivals,
        )

        info = sys.stderr if args.json else sys.stdout
        matrices = [random_matrix(args.rows, args.cols, seed=args.seed + i)
                    for i in range(4)]
        arrivals = poisson_arrivals(args.rate, args.duration, seed=args.seed)
        print(f"slo-report: replaying {len(arrivals)} poisson arrivals over "
              f"{args.duration:g} s across {args.shards} shard worker(s)",
              file=info)
        with ShardedSVDServer(shards=args.shards, compute_uv=False) as srv:
            replay_report = replay_arrivals(srv, matrices, arrivals)
    report = get_slo_engine().report()
    if replay_report is not None:
        report["replay"] = replay_report.summary()
        report["replay_scorecard"] = replay_report.score_slos()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    _render_slo_report(report)
    if replay_report is not None:
        card = report["replay_scorecard"]
        print("replay scorecard (this replay only):")
        _render_slo_report(card)
    return 0


def _cmd_events(args) -> int:
    import queue

    from repro.obs.events import get_event_log, read_jsonl

    def matches(ev) -> bool:
        return not args.trace or ev.trace_id == args.trace

    def show(ev) -> None:
        print(json.dumps(ev.to_dict(), sort_keys=True), flush=True)

    if args.input:
        for ev in read_jsonl(args.input):
            if matches(ev):
                show(ev)
        return 0
    log = get_event_log()
    if log is None:
        print("no process event log installed", file=sys.stderr)
        return 1
    stream: queue.Queue | None = None
    if args.follow:
        stream = queue.Queue()
        log.subscribe(stream.put)
    shown = set()
    if args.demo:
        from repro.serve import SVDServer
        from repro.workloads import random_matrix

        with SVDServer(workers=2) as srv:
            handles = srv.submit_many(
                [random_matrix(16, 8, seed=i) for i in range(4)],
                compute_uv=False)
            for handle in handles:
                handle.result(timeout=60.0)
    for ev in log.events():
        if matches(ev):
            show(ev)
            shown.add(id(ev))
    if stream is None:
        return 0
    import time as _time

    deadline = (_time.monotonic() + args.follow_s
                if args.follow_s is not None else None)
    try:
        while True:
            timeout = None
            if deadline is not None:
                timeout = deadline - _time.monotonic()
                if timeout <= 0:
                    break
            try:
                ev = stream.get(timeout=timeout)
            except queue.Empty:
                break
            if matches(ev) and id(ev) not in shown:
                show(ev)
    except KeyboardInterrupt:
        pass
    finally:
        log.unsubscribe(stream.put)
    return 0


def add_obs_commands(sub) -> None:
    """Register the observability subcommands on an argparse subparsers."""
    sr = sub.add_parser("slo-report",
                        help="evaluate the serving SLOs (error budgets, "
                             "burn-rate alerts)")
    sr.add_argument("--replay", action="store_true",
                    help="drive a short sharded replay first so the "
                         "objectives have traffic to judge")
    sr.add_argument("--shards", type=int, default=2)
    sr.add_argument("--rate", type=float, default=40.0,
                    help="replay poisson arrival rate [req/s]")
    sr.add_argument("--duration", type=float, default=1.0,
                    help="replay load window [s]")
    sr.add_argument("--rows", type=int, default=24)
    sr.add_argument("--cols", type=int, default=12)
    sr.add_argument("--seed", type=int, default=0)
    sr.add_argument("--json", action="store_true",
                    help="emit the full report (and replay scorecard) "
                         "as JSON on stdout")
    sr.set_defaults(func=_cmd_slo_report)

    ev = sub.add_parser("events",
                        help="print the structured event log as JSONL")
    ev.add_argument("--follow", action="store_true",
                    help="stream new events live (Ctrl-C to stop)")
    ev.add_argument("--follow-s", type=float, default=None, metavar="S",
                    help="with --follow: stop after S seconds instead "
                         "of waiting for Ctrl-C")
    ev.add_argument("--trace", default=None, metavar="TRACE_ID",
                    help="only events carrying this trace id")
    ev.add_argument("--input", default=None, metavar="FILE",
                    help="read a JSONL event file (e.g. a log mirror) "
                         "instead of the in-process log")
    ev.add_argument("--demo", action="store_true",
                    help="run a small serving workload first so the log "
                         "has content")
    ev.set_defaults(func=_cmd_events)
