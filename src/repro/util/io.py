"""Save and load decomposition results.

Small, dependency-free persistence for :class:`repro.core.result.SVDResult`
(NumPy ``.npz`` container) so pipelines can checkpoint factorizations —
e.g. an LSI index built once and queried many times.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import SVDResult

__all__ = ["save_result", "load_result"]

_FORMAT_VERSION = 1


def save_result(path, result: SVDResult) -> None:
    """Serialize *result* to an ``.npz`` file.

    The convergence trace is flattened into parallel arrays; a missing
    U/Vᵀ (singular-values-only results) round-trips as missing.
    """
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "s": result.s,
        "sweeps": np.array(result.sweeps),
        "method": np.array(result.method),
        "converged": np.array(result.converged),
    }
    if result.u is not None:
        payload["u"] = result.u
    if result.vt is not None:
        payload["vt"] = result.vt
    if result.trace is not None:
        payload["trace_metric"] = np.array(result.trace.metric)
        payload["trace_sweeps"] = np.array(result.trace.sweeps)
        payload["trace_values"] = np.array(result.trace.values)
        payload["trace_rotations"] = np.array(result.trace.rotations)
        payload["trace_skipped"] = np.array(result.trace.skipped)
        payload["trace_converged"] = np.array(result.trace.converged)
    np.savez(path, **payload)


def load_result(path) -> SVDResult:
    """Load an :class:`SVDResult` previously written by :func:`save_result`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        trace = None
        if "trace_values" in data:
            from repro.core.convergence import ConvergenceTrace

            trace = ConvergenceTrace(
                metric=str(data["trace_metric"]),
                sweeps=[int(x) for x in data["trace_sweeps"]],
                values=[float(x) for x in data["trace_values"]],
                rotations=[int(x) for x in data["trace_rotations"]],
                skipped=[int(x) for x in data["trace_skipped"]],
                converged=bool(data["trace_converged"]),
            )
        return SVDResult(
            s=np.array(data["s"]),
            u=np.array(data["u"]) if "u" in data else None,
            vt=np.array(data["vt"]) if "vt" in data else None,
            sweeps=int(data["sweeps"]),
            trace=trace,
            method=str(data["method"]),
            converged=bool(data["converged"]),
        )
