"""Numeric helpers: convergence metrics, residuals, SVD canonicalization.

The paper measures convergence as the *mean absolute deviation from zero
of the covariances* (Figs 10-11).  For an n-column matrix the covariance
matrix is symmetric, so the metric averages over the strict upper
triangle.  We also provide the classical ``off(A)`` Frobenius metric used
in Jacobi-method literature, and helpers to put SVD factors in the
canonical (descending, non-negative) form for comparisons.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "sign",
    "mean_abs_off_diagonal",
    "frobenius_off_diagonal",
    "relative_off_diagonal",
    "relative_residual",
    "reconstruction_error",
    "orthogonality_error",
    "sort_svd",
    "singular_value_error",
]


def sign(x: float) -> float:
    """Hardware-style sign: the IEEE-754 sign bit, so never 0.

    Algorithm 1 line 12 divides by ``sign(rho)``; the FPGA datapath takes
    the sign bit of the double word, so ``+0.0 -> +1`` and
    ``-0.0 -> -1``.  A true ``numpy.sign`` would yield 0 and poison the
    rotation, and ignoring the sign of ``-0.0`` would make the textbook
    and dataflow formulations disagree when the two column norms are
    exactly equal (rho = -0.0 for negative covariance).
    """
    return math.copysign(1.0, x)


def mean_abs_off_diagonal(d: np.ndarray) -> float:
    """Mean absolute value of the strict upper-triangular entries of *d*.

    This is the paper's convergence metric (Figs 10-11): ``d`` is the
    column-covariance matrix and the metric measures how far the columns
    are from mutual orthogonality.  Returns 0.0 for 1x1 matrices.
    """
    d = np.asarray(d)
    n = d.shape[0]
    if n < 2:
        return 0.0
    iu = np.triu_indices(n, k=1)
    return float(np.mean(np.abs(d[iu])))


def frobenius_off_diagonal(d: np.ndarray) -> float:
    """``off(D)``: Frobenius norm of the strict upper triangle of *d*.

    The classical Jacobi-convergence quantity; each rotation reduces
    ``off(D)^2`` for a symmetric matrix by the square of the annihilated
    element (monotone convergence).
    """
    d = np.asarray(d)
    n = d.shape[0]
    if n < 2:
        return 0.0
    iu = np.triu_indices(n, k=1)
    return float(np.sqrt(np.sum(d[iu] ** 2)))


def relative_off_diagonal(d: np.ndarray) -> float:
    """``off(D)`` scaled by the Frobenius norm of *d* (unitless, in [0, 1])."""
    d = np.asarray(d)
    denom = float(np.linalg.norm(d))
    if denom == 0.0:
        return 0.0
    return frobenius_off_diagonal(d) / denom


def relative_residual(a: np.ndarray, b: np.ndarray) -> float:
    """``||a - b||_F / max(||a||_F, tiny)`` — scale-free matrix distance."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = max(float(np.linalg.norm(a)), np.finfo(np.float64).tiny)
    return float(np.linalg.norm(a - b)) / denom


def reconstruction_error(
    a: np.ndarray, u: np.ndarray, s: np.ndarray, vt: np.ndarray
) -> float:
    """Relative error of the rank-len(s) reconstruction ``u @ diag(s) @ vt``."""
    approx = (u[:, : len(s)] * s) @ vt[: len(s), :]
    return relative_residual(a, approx)


def orthogonality_error(q: np.ndarray) -> float:
    """``||QᵀQ - I||_F`` for a matrix with orthonormal columns."""
    q = np.asarray(q, dtype=np.float64)
    k = q.shape[1]
    return float(np.linalg.norm(q.T @ q - np.eye(k)))


def sort_svd(
    u: np.ndarray | None, s: np.ndarray, vt: np.ndarray | None
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray | None]:
    """Canonicalize an SVD: singular values descending, all non-negative.

    Negative entries in *s* are sign-flipped into the corresponding
    column of *u* (or row of *vt* when *u* is None).  Factors may be
    ``None`` when the caller only computed singular values.
    """
    s = np.asarray(s, dtype=np.float64).copy()
    neg = s < 0
    if np.any(neg):
        s[neg] = -s[neg]
        if u is not None:
            u = u.copy()
            u[:, neg] = -u[:, neg]
        elif vt is not None:
            vt = vt.copy()
            vt[neg, :] = -vt[neg, :]
    order = np.argsort(s)[::-1]
    s = s[order]
    if u is not None:
        u = u[:, order]
    if vt is not None:
        vt = vt[order, :]
    return u, s, vt


def singular_value_error(s_ref: np.ndarray, s_test: np.ndarray) -> float:
    """Relative max-norm error between two descending singular spectra.

    Spectra are compared after sorting; the scale is the largest
    reference singular value, so the metric is meaningful even when the
    matrix is nearly rank-deficient.
    """
    s_ref = np.sort(np.abs(np.asarray(s_ref, dtype=np.float64)))[::-1]
    s_test = np.sort(np.abs(np.asarray(s_test, dtype=np.float64)))[::-1]
    k = min(len(s_ref), len(s_test))
    if k == 0:
        return 0.0
    denom = max(float(s_ref[0]), np.finfo(np.float64).tiny)
    return float(np.max(np.abs(s_ref[:k] - s_test[:k]))) / denom
