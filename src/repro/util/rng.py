"""Seeding policy: every stochastic entry point takes ``seed`` or ``rng``.

The paper evaluates on "randomly generated datasets"; reproducing its
figures requires deterministic workloads, so the library never touches
global NumPy random state.  All generators accept either an integer seed
or an existing :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rngs"]


def default_rng(seed=None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or fresh entropy."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from one seed.

    Used by parameter sweeps so each grid cell gets its own stream and
    results do not depend on evaluation order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    ss = np.random.SeedSequence(seed if not isinstance(seed, np.random.Generator) else None)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
