"""Wall-clock timing helper for the evaluation harness.

A tiny context-manager/accumulator so experiment runners can report
measured times without pulling in a profiling dependency.  Benchmarks use
pytest-benchmark; this is for the example scripts and eval harness.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Accumulating wall-clock timer.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    >>> t.count
    1

    Nested entry of one instance is rejected — it would silently
    overwrite the outer block's start time and corrupt the accumulator:

    >>> with t:
    ...     with t:
    ...         pass
    Traceback (most recent call last):
        ...
    RuntimeError: Timer is not re-entrant: already timing a block
    """

    __slots__ = ("elapsed", "count", "_start")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.count: int = 0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is not re-entrant: already timing a block")
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without being entered")
        self.elapsed += time.perf_counter() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean elapsed seconds per timed block (0.0 before any block ran)."""
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulator; an in-progress block is discarded."""
        self.elapsed = 0.0
        self.count = 0
        self._start = None

    def __repr__(self) -> str:
        return f"Timer(elapsed={self.elapsed:.6f}s, count={self.count})"
