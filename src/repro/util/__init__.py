"""Shared utilities: argument validation, numeric helpers, timing, RNG policy.

These helpers are deliberately small and dependency-free (NumPy only) so
that every other subpackage can use them without import cycles.
"""

from repro.util.hashing import digest
from repro.util.numerics import (
    frobenius_off_diagonal,
    mean_abs_off_diagonal,
    relative_residual,
    sign,
    sort_svd,
)
from repro.util.rng import default_rng, spawn_rngs
from repro.util.timer import Timer
from repro.util.validation import (
    as_float_matrix,
    check_positive_int,
    check_probability,
)

__all__ = [
    "Timer",
    "as_float_matrix",
    "check_positive_int",
    "check_probability",
    "default_rng",
    "digest",
    "frobenius_off_diagonal",
    "mean_abs_off_diagonal",
    "relative_residual",
    "sign",
    "sort_svd",
    "spawn_rngs",
]
