"""Content digests for arrays and option mappings.

The serving layer's result cache (:mod:`repro.serve.cache`) needs a
stable key for "this exact matrix decomposed with these exact options".
:func:`digest` provides it: a hex digest over the array's dtype, shape,
and raw bytes plus a canonical encoding of any extra options.  Two
arrays collide only if they are bit-identical *and* logically identical
(dtype and shape are part of the digest, so a float32 copy or a
transposed view of the same buffer hashes differently), and layout is
normalised first, so non-contiguous views hash the same as their
contiguous copies.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["digest"]


def _canonical(value) -> str:
    """Deterministic, order-insensitive text encoding of option values."""
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in sorted(value.items())
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, float):
        # repr round-trips doubles exactly; format 1.0 and 1 distinctly.
        return f"f{value!r}"
    if isinstance(value, bool):
        return f"b{value}"
    if value is None:
        return "~"
    return f"{type(value).__name__}:{value!r}"


def digest(a, *, extra=None, length: int = 16) -> str:
    """Hex content digest of an array plus optional extra context.

    Parameters
    ----------
    a : array_like
        The array to fingerprint.  Non-contiguous (sliced, transposed,
        Fortran-ordered) inputs are normalised to C order first, so the
        digest depends only on logical content, not memory layout.
    extra : dict, list, tuple, scalar, or None
        Additional context folded into the digest — e.g. solver options.
        Dicts are encoded with sorted keys, so insertion order is
        irrelevant.
    length : int
        Digest size in bytes (the hex string is twice this long).

    Returns
    -------
    str
        Hex digest of ``2 * length`` characters.

    Examples
    --------
    >>> import numpy as np
    >>> a = np.arange(6.0).reshape(2, 3)
    >>> digest(a) == digest(a.copy())
    True
    >>> digest(a) == digest(a.T)
    False
    >>> digest(a) == digest(a, extra={"method": "blocked"})
    False
    """
    arr = np.asarray(a)
    canon = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=length)
    h.update(canon.dtype.str.encode())
    h.update(repr(canon.shape).encode())
    h.update(canon.tobytes())
    if extra is not None:
        h.update(b"|")
        h.update(_canonical(extra).encode())
    return h.hexdigest()
