"""Argument validation helpers used across the library.

The public API accepts anything array-like; internally everything is a
C-contiguous ``float64`` ndarray (matching the paper's IEEE-754 double
precision datapath).  Validation failures raise ``TypeError`` or
``ValueError`` with messages that name the offending argument, so errors
surface at the API boundary rather than deep inside a sweep.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "as_float_matrix",
    "as_square_matrix",
    "check_nonnegative_int",
    "check_positive_int",
    "check_positive_float",
    "check_probability",
    "check_in_choices",
]


def as_float_matrix(a, *, name: str = "a", allow_empty: bool = False) -> np.ndarray:
    """Coerce *a* to a 2-D C-contiguous float64 array.

    Parameters
    ----------
    a : array_like
        Input matrix.
    name : str
        Argument name used in error messages.
    allow_empty : bool
        Whether zero-sized matrices are accepted.

    Returns
    -------
    numpy.ndarray
        A float64, C-contiguous copy-or-view of *a* with ``ndim == 2``.
    """
    arr = np.asarray(a)
    if arr.dtype.kind not in "fiub":
        raise TypeError(
            f"{name} must be a real numeric matrix, got dtype {arr.dtype!r}"
        )
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries (nan or inf)")
    return arr


def as_square_matrix(a, *, name: str = "a") -> np.ndarray:
    """Like :func:`as_float_matrix` but additionally requires a square shape."""
    arr = as_float_matrix(a, name=name)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_positive_int(value, *, name: str) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(value, *, name: str) -> int:
    """Validate that *value* is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_float(value, *, name: str) -> float:
    """Validate that *value* is a finite number > 0 and return it as ``float``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be finite and > 0, got {value}")
    return value


def check_probability(value, *, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_choices(value, choices, *, name: str):
    """Validate membership of *value* in *choices* (an iterable)."""
    choices = tuple(choices)
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
    return value
