"""Run the complete evaluation: ``python -m repro.eval``.

Prints every reproduced table and figure with its shape checks and
exits non-zero if any check fails.  Set REPRO_BENCH_FULL=1 to run the
measured convergence figures at paper scale (minutes instead of
seconds).
"""

from __future__ import annotations

import sys

from repro.eval.experiments import run_all
from repro.eval.report import format_experiment


def main() -> int:
    failures = 0
    for result in run_all():
        print(format_experiment(result))
        print()
        failures += sum(1 for c in result.checks if not c.passed)
    if failures:
        print(f"{failures} shape check(s) FAILED")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
