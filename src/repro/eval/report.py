"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ShapeCheck", "ExperimentResult", "format_table", "format_experiment"]


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative (shape) assertion about a reproduced experiment."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows of data plus shape checks."""

    ident: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(name, bool(passed), detail))

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def __str__(self) -> str:
        return format_experiment(self)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(parts):
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_experiment(result: ExperimentResult) -> str:
    """Full report block for one experiment."""
    out = [f"=== {result.ident}: {result.title} ==="]
    if result.notes:
        out.append(result.notes)
    out.append(format_table(result.headers, result.rows))
    if result.checks:
        out.append("shape checks:")
        out.extend(f"  {c}" for c in result.checks)
    return "\n".join(out)
