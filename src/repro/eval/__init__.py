"""Evaluation harness: digitized paper data, experiment runners, reports."""

from repro.eval.accuracy import run_accuracy_study
from repro.eval.calibration import verify_calibration
from repro.eval.experiments import (
    CLAIM_COVERAGE,
    run_ablation_arithmetic,
    run_ablation_caching,
    run_ablation_ordering,
    run_ablation_reconfiguration,
    run_ablation_resilience,
    run_all,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_related_work,
    run_table1,
    run_table2,
)
from repro.eval.paper_data import (
    CLAIMS,
    SPEEDUP_BAND,
    TABLE1_SECONDS,
    TABLE2_UTILIZATION,
    Claim,
)
from repro.eval.report import ExperimentResult, ShapeCheck, format_experiment, format_table

__all__ = [
    "CLAIMS",
    "CLAIM_COVERAGE",
    "Claim",
    "ExperimentResult",
    "SPEEDUP_BAND",
    "ShapeCheck",
    "TABLE1_SECONDS",
    "TABLE2_UTILIZATION",
    "format_experiment",
    "format_table",
    "run_ablation_arithmetic",
    "run_ablation_caching",
    "run_ablation_ordering",
    "run_ablation_reconfiguration",
    "run_ablation_resilience",
    "run_accuracy_study",
    "run_all",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_related_work",
    "run_table1",
    "run_table2",
    "verify_calibration",
]
