"""Experiment runners: one function per table/figure of the paper.

Each runner produces an :class:`repro.eval.report.ExperimentResult`
holding the reproduced rows/series plus *shape checks* — assertions of
the paper's qualitative claims (who wins, growth directions, where
crossovers fall).  Benchmarks print these; ``python -m repro.eval``
runs the full set.

Modelled quantities (FPGA cycles, software/GPU times) always use paper
scale.  Measured quantities (actual Python decompositions for the
convergence figures) default to scaled-down sizes; pass explicit size
lists or set REPRO_BENCH_FULL=1 for paper scale.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gpu_model import GPU_8800_MODEL, gpu_hestenes_seconds
from repro.baselines.plain_hestenes import fixed_point_fpga_seconds
from repro.baselines.sw_model import MATLAB_MODEL, MKL_MODEL
from repro.baselines.systolic_model import SystolicArrayModel
from repro.core.blocked import blocked_svd
from repro.core.convergence import ConvergenceCriterion
from repro.eval.paper_data import (
    SPEEDUP_BAND,
    TABLE1_SECONDS,
    TABLE2_UTILIZATION,
)
from repro.eval.ablations import (
    run_ablation_arithmetic,
    run_ablation_caching,
    run_ablation_ordering,
    run_ablation_reconfiguration,
    run_ablation_resilience,
)
from repro.eval.report import ExperimentResult
from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.hw.resources import estimate_resources
from repro.hw.timing_model import estimate_seconds
from repro.util.rng import spawn_rngs
from repro.workloads.suites import (
    FIG7_SQUARE_SIZES,
    FIG8_SHAPES,
    FIG9_COLUMN_DIMS,
    FIG9_ROW_DIMS,
    FIG10_SQUARE_SIZES,
    FIG11_COLUMN_DIM,
    FIG11_ROW_DIMS,
    TABLE1_COLUMN_DIMS,
    TABLE1_ROW_DIMS,
    fast_mode,
    scale_dims,
)

#: Traceability: which experiment asserts each qualitative claim of
#: :data:`repro.eval.paper_data.CLAIMS`.  The test suite checks this
#: map stays total (every claim covered, every target a real runner).
CLAIM_COVERAGE = {
    "columns-dominate": "table1",
    "fpga-wins-small": "fig7",
    "fpga-loses-large": "fig7",
    "row-growth-slow": "fig8",
    "speedup-band": "fig9",
    "six-sweeps-converge": "fig10",
    "rows-dont-hurt-convergence": "fig11",
    "beats-gpu-hestenes": "related",
    "beats-fixed-point": "related",
}

__all__ = [
    "CLAIM_COVERAGE",
    "run_table1",
    "run_table2",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_related_work",
    "run_ablation_arithmetic",
    "run_ablation_resilience",
    "run_ablation_caching",
    "run_ablation_reconfiguration",
    "run_ablation_ordering",
    "run_all",
]


def run_table1(arch: ArchitectureParams = PAPER_ARCH) -> ExperimentResult:
    """Table I: execution seconds over the n x m grid, model vs paper."""
    res = ExperimentResult(
        "table1",
        "FPGA execution time (seconds): cycle model vs paper",
        ["n (cols)", "m (rows)", "paper [s]", "model [s]", "ratio"],
        notes="Axis reading per DESIGN.md: outer = columns n, inner = rows m.",
    )
    ratios = {}
    for n in TABLE1_COLUMN_DIMS:
        for m in TABLE1_ROW_DIMS:
            paper = TABLE1_SECONDS[(n, m)]
            model = estimate_seconds(m, n, arch)
            ratios[(n, m)] = model / paper
            res.add_row(n, m, paper, model, model / paper)
    res.check(
        "every cell within 2x of the paper",
        all(0.5 < r < 2.0 for r in ratios.values()),
        f"worst ratio {max(ratios.values(), key=lambda r: abs(np.log(r))):.2f}",
    )
    res.check(
        "column growth dominates (n: 128->1024 at m=128 grows >40x)",
        estimate_seconds(128, 1024, arch) / estimate_seconds(128, 128, arch) > 40,
    )
    res.check(
        "row growth is mild (m: 128->1024 at n=128 grows <10x)",
        estimate_seconds(1024, 128, arch) / estimate_seconds(128, 128, arch) < 10,
    )
    return res


def run_table2(arch: ArchitectureParams = PAPER_ARCH) -> ExperimentResult:
    """Table II: resource utilization, model vs paper."""
    rep = estimate_resources(arch)
    ours = rep.as_table()
    res = ExperimentResult(
        "table2",
        "Resource consumption on the XC5VLX330",
        ["resource", "paper", "model", "model count"],
    )
    counts = {"lut": rep.luts, "bram": rep.bram_blocks, "dsp": rep.dsps}
    for key in ("lut", "bram", "dsp"):
        res.add_row(key.upper(), TABLE2_UTILIZATION[key], round(ours[key], 3), counts[key])
        res.check(
            f"{key} within 3 points of paper",
            abs(ours[key] - TABLE2_UTILIZATION[key]) <= 0.03,
            f"{ours[key]:.3f} vs {TABLE2_UTILIZATION[key]:.2f}",
        )
    return res


def run_fig7(sizes=FIG7_SQUARE_SIZES, arch: ArchitectureParams = PAPER_ARCH) -> ExperimentResult:
    """Fig. 7: square-matrix execution time, ours vs MATLAB/MKL/GPU."""
    res = ExperimentResult(
        "fig7",
        "SVD time for square matrices (seconds)",
        ["n", "FPGA (ours)", "MATLAB", "MKL", "GPU [7]"],
    )
    series = {}
    for n in sizes:
        row = (
            estimate_seconds(n, n, arch),
            MATLAB_MODEL.seconds(n, n),
            MKL_MODEL.seconds(n, n),
            GPU_8800_MODEL.seconds(n, n),
        )
        series[n] = row
        res.add_row(n, *row)
    small = [n for n in sizes if n <= 256]
    res.check(
        "FPGA fastest for dimensions <= 256",
        all(series[n][0] == min(series[n]) for n in small),
    )
    if 2048 in series:
        fpga, matlab, mkl, gpu = series[2048]
        res.check(
            "software/GPU overtake the FPGA at 2048 (the >512 slowdown)",
            min(matlab, mkl, gpu) < fpga,
            f"fpga={fpga:.2f}s best-other={min(matlab, mkl, gpu):.2f}s",
        )
    if 128 in series:
        res.check(
            "GPU is the slowest solution at 128 (thread-sync overhead)",
            series[128][3] == max(series[128]),
        )
    return res


def run_fig8(shapes=FIG8_SHAPES, arch: ArchitectureParams = PAPER_ARCH) -> ExperimentResult:
    """Fig. 8: rectangular matrices — fixed n, growing m."""
    res = ExperimentResult(
        "fig8",
        "SVD time for rectangular matrices (seconds)",
        ["m", "n", "FPGA (ours)", "MATLAB", "MKL", "GPU [7]"],
    )
    by_n: dict[int, list[tuple[int, float]]] = {}
    for m, n in shapes:
        t = estimate_seconds(m, n, arch)
        by_n.setdefault(n, []).append((m, t))
        res.add_row(m, n, t, MATLAB_MODEL.seconds(m, n), MKL_MODEL.seconds(m, n),
                    GPU_8800_MODEL.seconds(m, n))
    for n, pts in by_n.items():
        pts.sort()
        (m0, t0), (m1, t1) = pts[0], pts[-1]
        res.check(
            f"n={n}: {m1 // m0}x more rows costs only {t1 / t0:.1f}x time (<{m1 // m0}x)",
            t1 / t0 < m1 / m0,
        )
    return res


def run_fig9(
    column_dims=FIG9_COLUMN_DIMS,
    row_dims=FIG9_ROW_DIMS,
    arch: ArchitectureParams = PAPER_ARCH,
) -> ExperimentResult:
    """Fig. 9: dimensional speedup of the FPGA over the MATLAB model."""
    res = ExperimentResult(
        "fig9",
        "Speedup over MATLAB (model), n in [128, 256], m in [128, 2048]",
        ["m", "n", "FPGA [s]", "MATLAB [s]", "speedup"],
        notes=f"Paper band: {SPEEDUP_BAND[0]}x to {SPEEDUP_BAND[1]}x.",
    )
    speedups = {}
    for n in column_dims:
        for m in row_dims:
            fpga = estimate_seconds(m, n, arch)
            matlab = MATLAB_MODEL.seconds(m, n)
            speedups[(m, n)] = matlab / fpga
            res.add_row(m, n, fpga, matlab, matlab / fpga)
    lo, hi = min(speedups.values()), max(speedups.values())
    res.check(
        "speedup > 1 everywhere in the band",
        lo > 1.0,
        f"min {lo:.1f}x at {min(speedups, key=speedups.get)}",
    )
    res.check(
        f"band shape comparable to paper ({SPEEDUP_BAND[0]}-{SPEEDUP_BAND[1]}x)",
        SPEEDUP_BAND[0] * 0.5 <= lo <= SPEEDUP_BAND[0] * 2.5
        and SPEEDUP_BAND[1] * 0.4 <= hi <= SPEEDUP_BAND[1] * 2.5,
        f"ours {lo:.1f}-{hi:.1f}x",
    )
    res.check(
        "speedup grows with row dimension (taller is better for us)",
        all(
            speedups[(row_dims[i], n)] < speedups[(row_dims[i + 1], n)]
            for n in column_dims
            for i in range(len(row_dims) - 1)
        ),
    )
    return res


def _convergence_series(shapes, sweeps, seed) -> dict[tuple[int, int], list[float]]:
    """Mean-abs-covariance trace per shape, via the blocked implementation."""
    rngs = spawn_rngs(seed, len(shapes))
    series = {}
    for (m, n), rng in zip(shapes, rngs):
        a = rng.random((m, n))  # uniform entries: the correlated hard case
        out = blocked_svd(
            a,
            compute_uv=False,
            track_columns="never",
            criterion=ConvergenceCriterion(max_sweeps=sweeps, tol=None),
        )
        series[(m, n)] = out.trace.values
    return series


def run_fig10(sizes=None, *, sweeps: int = 6, seed: int = 2014) -> ExperimentResult:
    """Fig. 10: convergence (mean |cov|) per sweep, square matrices."""
    if sizes is None:
        sizes = scale_dims(FIG10_SQUARE_SIZES, 8, 16) if fast_mode() else FIG10_SQUARE_SIZES
    shapes = [(n, n) for n in sizes]
    series = _convergence_series(shapes, sweeps, seed)
    res = ExperimentResult(
        "fig10",
        "Convergence of square matrices (mean abs covariance per sweep)",
        ["n", *[f"sweep {s}" for s in range(sweeps + 1)]],
        notes="Sweep 0 is the initial covariance level.",
    )
    for (m, n), values in series.items():
        res.add_row(n, *values)
    for (m, n), values in series.items():
        # The paper calls 6 sweeps "reasonable convergence with certain
        # thresholds"; its Fig. 10 shows ~4-6 decades of decay depending
        # on size.  We require at least 4 decades relative to sweep 0.
        res.check(
            f"n={n}: covariances collapse by >=4 orders in {sweeps} sweeps",
            values[-1] <= 1e-4 * max(values[0], 1e-300),
            f"{values[0]:.2e} -> {values[-1]:.2e}",
        )
    res.check(
        "decay is monotone from sweep 1 on, for every size",
        all(
            all(b <= a * 1.01 for a, b in zip(v[1:], v[2:]))
            for v in series.values()
        ),
    )
    return res


def run_fig11(
    row_dims=None, *, column_dim: int | None = None, sweeps: int = 6, seed: int = 2015
) -> ExperimentResult:
    """Fig. 11: convergence at fixed column size, various row sizes."""
    if row_dims is None:
        row_dims = (
            scale_dims(FIG11_ROW_DIMS, 8, 16) if fast_mode() else FIG11_ROW_DIMS
        )
    if column_dim is None:
        n = FIG11_COLUMN_DIM // 8 if fast_mode() else FIG11_COLUMN_DIM
    else:
        n = column_dim
    shapes = [(m, n) for m in row_dims]
    series = _convergence_series(shapes, sweeps, seed)
    res = ExperimentResult(
        "fig11",
        f"Convergence at fixed column size {n}, various row sizes",
        ["m", *[f"sweep {s}" for s in range(sweeps + 1)]],
    )
    finals = {}
    for (m, _n), values in series.items():
        res.add_row(m, *values)
        finals[m] = values[-1] / max(values[0], 1e-300)
    res.check(
        "all row sizes converge by >=4 orders",
        all(f <= 1e-4 for f in finals.values()),
        ", ".join(f"m={m}: {f:.1e}" for m, f in finals.items()),
    )
    # Below 1e-8 relative, a run is simply "converged" — the double-
    # exponential tail makes raw values scatter meaninglessly, so the
    # similarity comparison clamps there and tolerates four decades
    # (roughly one sweep of progress either way).
    clamped = {m: max(f, 1e-8) for m, f in finals.items()}
    spread = max(clamped.values()) / min(clamped.values())
    res.check(
        "row dimension barely affects the convergence rate (spread < 1e4)",
        spread < 1e4,
        f"relative-final spread {spread:.1f}x (clamped at 1e-8)",
    )
    return res


def run_related_work(arch: ArchitectureParams = PAPER_ARCH) -> ExperimentResult:
    """Section VI-B comparisons: GPU Hestenes [11], fixed-point FPGA [12],
    and the Brent-Luk systolic family's capacity ceiling."""
    res = ExperimentResult(
        "related",
        "Hestenes-Jacobi related work (Section VI-B)",
        ["system", "shape", "time [s]", "ours [s]", "speedup"],
    )
    for (m, n) in ((128, 128), (256, 256)):
        theirs = gpu_hestenes_seconds(m, n)
        ours = estimate_seconds(m, n, arch)
        res.add_row("GPU Hestenes [11]", f"{m}x{n}", theirs, ours, theirs / ours)
        res.check(f"faster than GPU Hestenes at {n}", theirs / ours > 1.0)
    theirs = fixed_point_fpga_seconds(127, 32)
    ours = estimate_seconds(128, 128, arch)
    res.add_row("fixed-point FPGA [12]", "32x127 (their max)", theirs, ours, theirs / ours)
    res.check(
        "our 128x128 beats their largest 32x127 by >3.5x (paper: >5x)",
        theirs / ours > 3.5,
        f"{theirs / ours:.1f}x",
    )
    sys_model = SystolicArrayModel(arch.platform)
    res.add_row(
        "Brent-Luk systolic [9]",
        f"max {sys_model.max_square_size}x{sys_model.max_square_size}",
        sys_model.seconds(sys_model.max_square_size, sys_model.max_square_size),
        estimate_seconds(sys_model.max_square_size, sys_model.max_square_size, arch),
        float("nan"),
    )
    res.check(
        "systolic arrays cannot reach the paper's 128-2048 range",
        sys_model.max_square_size < 128,
        f"PE budget caps n at {sys_model.max_square_size}",
    )
    return res


def run_all() -> list[ExperimentResult]:
    """Run every experiment; used by ``python -m repro.eval``."""
    from repro.eval.accuracy import run_accuracy_study

    return [
        run_table1(),
        run_table2(),
        run_fig7(),
        run_fig8(),
        run_fig9(),
        run_fig10(),
        run_fig11(),
        run_related_work(),
        run_ablation_caching(),
        run_ablation_reconfiguration(),
        run_ablation_ordering(),
        run_ablation_arithmetic(),
        run_ablation_resilience(),
        run_accuracy_study(),
    ]
