"""Ablation experiments: the paper's design decisions, isolated.

A: covariance caching vs per-sweep recomputation (the algorithmic
   contribution).
B: preprocessor reconfiguration (the 4 reclaimed update kernels).
C: pair ordering (cyclic vs row vs random) on convergence.
D: floating point vs fixed-point CORDIC arithmetic (Section V-B).
E: soft-error resilience of cached covariances vs recomputation, plus
   the periodic-refresh mitigation.

Each returns an :class:`repro.eval.report.ExperimentResult`; they are
re-exported through :mod:`repro.eval.experiments` so callers see one
experiment namespace.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.plain_hestenes import plain_hestenes_svd, recompute_ratio
from repro.core.convergence import ConvergenceCriterion
from repro.eval.report import ExperimentResult
from repro.hw.params import PAPER_ARCH, ArchitectureParams
from repro.hw.timing_model import estimate_seconds

__all__ = [
    "run_ablation_caching",
    "run_ablation_reconfiguration",
    "run_ablation_ordering",
    "run_ablation_arithmetic",
    "run_ablation_resilience",
]


def run_ablation_caching(*, sweeps: int = 6, measure_small: bool = True) -> ExperimentResult:
    """Ablation A: covariance caching vs per-sweep recomputation."""
    res = ExperimentResult(
        "ablation-caching",
        "Covariance caching vs recomputation (flop ratio, modelled + measured)",
        ["m", "n", "modelled ratio", "measured dot flops", "cached gram flops"],
    )
    for n in (128, 256):
        for m in (128, 512, 2048):
            res.add_row(m, n, recompute_ratio(m, n, sweeps), "-", "-")
    if measure_small:
        rng = np.random.default_rng(7)
        a = rng.standard_normal((96, 24))
        _, flops = plain_hestenes_svd(a, max_sweeps=sweeps)
        gram_flops = 2 * 96 * (24 * 25 // 2)
        res.add_row(96, 24, recompute_ratio(96, 24, sweeps), flops.dot_flops, gram_flops)
        res.check(
            "measured recompute work exceeds one-shot Gram work by ~sweeps x",
            flops.dot_flops > (sweeps - 1) * gram_flops,
            f"{flops.dot_flops} vs {gram_flops}",
        )
    res.check(
        "caching advantage grows with aspect ratio m/n",
        recompute_ratio(2048, 128, sweeps) > recompute_ratio(128, 128, sweeps),
    )
    return res


def run_ablation_reconfiguration(arch: ArchitectureParams = PAPER_ARCH) -> ExperimentResult:
    """Ablation B: the preprocessor-reconfiguration design point."""
    res = ExperimentResult(
        "ablation-reconfig",
        "Preprocessor reconfiguration (4 extra update kernels) on/off",
        ["n", "with reconf [s]", "without [s]", "saving"],
    )
    no_reconf = arch.with_(reconfig_kernels=0)
    savings = {}
    for n in (128, 256, 512, 1024):
        t_with = estimate_seconds(n, n, arch)
        t_without = estimate_seconds(n, n, no_reconf)
        savings[n] = t_without / t_with
        res.add_row(n, t_with, t_without, t_without / t_with)
    res.check(
        "reconfiguration saves cycles at every size",
        all(s > 1.0 for s in savings.values()),
        ", ".join(f"n={n}: {s:.2f}x" for n, s in savings.items()),
    )
    return res


def run_ablation_ordering(*, n: int = 24, m: int = 48, sweeps: int = 8, seed: int = 11) -> ExperimentResult:
    """Ablation C: pair-ordering effect on convergence (measured)."""
    from repro.core.modified import modified_svd

    rng = np.random.default_rng(seed)
    a = rng.random((m, n))
    res = ExperimentResult(
        "ablation-ordering",
        f"Ordering vs convergence on a {m}x{n} uniform random matrix",
        ["ordering", *[f"sweep {s}" for s in range(sweeps + 1)]],
    )
    finals = {}
    for ordering in ("cyclic", "row", "random"):
        out = modified_svd(
            a,
            compute_uv=False,
            ordering=ordering,
            seed=seed,
            criterion=ConvergenceCriterion(max_sweeps=sweeps, tol=None),
        )
        values = out.trace.values
        res.add_row(ordering, *values)
        initial = max(values[0], 1e-300)
        # Clamp at 1e-10 relative: below that, runs are equally
        # "converged" and the double-exponential tail scatters wildly.
        finals[ordering] = max(values[min(6, len(values) - 1)] / initial, 1e-10)
    res.check(
        "every ordering converges within the sweep budget",
        all(f <= 1e-4 for f in finals.values()),
    )
    res.check(
        "the paper's cyclic ordering is competitive at sweep 6",
        finals["cyclic"] <= 100 * min(finals.values()),
        ", ".join(f"{k}: {v:.1e}" for k, v in finals.items()),
    )
    return res


def run_ablation_arithmetic(*, seed: int = 21) -> ExperimentResult:
    """Ablation D: floating point vs fixed-point/CORDIC (Section V-B).

    The paper chose IEEE-754 double cores over the literature's CORDIC
    fixed-point approach "for its support of a much wider range of
    values".  This experiment runs the same matrix through both
    datapaths at several input scales: fixed point is competitive only
    inside its format's window; float64 is scale-free.
    """
    from repro.baselines.cordic_jacobi import cordic_hestenes_svd
    from repro.core.svd import hestenes_svd

    rng = np.random.default_rng(seed)
    base = rng.uniform(-1.0, 1.0, (16, 8))
    res = ExperimentResult(
        "ablation-arithmetic",
        "Floating point vs fixed-point CORDIC across input scales",
        ["scale", "fixed rel err", "fixed saturations", "fixed zeroed",
         "float rel err"],
        notes="Fixed point: Q15.16, 24 CORDIC iterations, 6 sweeps.",
    )
    window_err = None
    outside_ok = True
    for scale in (1e-5, 1e-2, 1.0, 3e2, 1e5):
        a = base * scale
        sv = np.linalg.svd(a, compute_uv=False)
        fixed = cordic_hestenes_svd(a, sweeps=6)
        err_fixed = float(np.max(np.abs(fixed.s - sv)) / sv[0])
        flt = hestenes_svd(a, compute_uv=False, max_sweeps=10)
        err_float = float(np.max(np.abs(flt.s - sv)) / sv[0])
        res.add_row(scale, err_fixed, fixed.saturations,
                    round(fixed.quantized_to_zero, 3), err_float)
        if scale == 1.0:
            window_err = err_fixed
        if scale in (1e-5, 1e5):
            outside_ok = outside_ok and (
                err_fixed > 1e-2 or fixed.saturations > 0
                or fixed.quantized_to_zero > 0.25
            )
        res.check(
            f"float64 scale-free at {scale:g}",
            err_float < 1e-9,
            f"{err_float:.1e}",
        )
    res.check(
        "fixed point accurate only inside its window",
        window_err is not None and window_err < 1e-3 and outside_ok,
        f"in-window err {window_err:.1e}",
    )
    return res


def run_ablation_resilience(*, m: int = 48, n: int = 16, seed: int = 31) -> ExperimentResult:
    """Ablation E: soft-error resilience of caching vs recomputation.

    FPGA block RAM is subject to single-event upsets; the paper's
    covariance cache keeps D resident on chip for the whole run.  This
    experiment injects one corrupted covariance entry after the first
    sweep and compares:

    * the *cached* algorithm (Algorithm 1) — the corruption persists in
      D and propagates into the singular values;
    * the *recompute* algorithm ([12]-style) — the same corruption in a
      transient dot product is healed, because every sweep re-derives
      norms and covariances from the columns;
    * the *cached + refresh* mitigation — recompute the Gram matrix
      from the tracked columns once mid-run (one extra preprocessor
      pass), scrubbing any accumulated upsets.

    A quantified trade-off of the paper's design: caching buys the
    speed, recomputation buys inherent error-scrubbing, and a periodic
    refresh recovers the scrubbing at a bounded cost.
    """
    from repro.core.modified import gram_matrix

    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    sv = np.linalg.svd(a, compute_uv=False)

    # --- cached: corrupt D after sweep 1 by re-entering with a bad D.
    # modified_svd rebuilds D internally, so emulate via a two-stage
    # run: one sweep clean, then restart from corrupted state by adding
    # the corruption to the *matrix's* Gram through a rank-one tweak is
    # not equivalent; instead run the algorithm manually.
    from repro.core.ordering import cyclic_sweep
    from repro.core.rotation import apply_rotation_gram, textbook_rotation

    d = gram_matrix(a)
    sweeps = 6
    inject_at = (0, min(3, n - 1))
    corrupted_value = None
    for sweep in range(1, sweeps + 1):
        for rnd in cyclic_sweep(n):
            for i, j in rnd:
                cov = d[i, j]
                if cov == 0.0:
                    continue
                p = textbook_rotation(d[i, i], d[j, j], cov)
                apply_rotation_gram(d, i, j, p, cov)
        if sweep == 1:
            # Single-event upset: one covariance word flips to garbage.
            corrupted_value = float(d[inject_at]) + 0.25 * float(np.trace(d)) / n
            d[inject_at] = corrupted_value
            d[inject_at[1], inject_at[0]] = corrupted_value
    diag = np.clip(np.diag(d), 0.0, None)
    s_cached = np.sort(np.sqrt(diag))[::-1][: min(m, n)]
    err_cached = float(np.max(np.abs(s_cached - sv)) / sv[0])

    # --- cached + refresh: same upset, but the columns are tracked and
    # D is recomputed from them at the midpoint (sweep 3), scrubbing
    # the corruption before it propagates further.
    d = gram_matrix(a)
    b_cols = a.copy()
    for sweep in range(1, sweeps + 1):
        for rnd in cyclic_sweep(n):
            for i, j in rnd:
                cov = d[i, j]
                if cov == 0.0:
                    continue
                p = textbook_rotation(d[i, i], d[j, j], cov)
                apply_rotation_gram(d, i, j, p, cov)
                from repro.core.rotation import apply_rotation_columns as _arc

                _arc(b_cols, i, j, p)
        if sweep == 1:
            d[inject_at] = corrupted_value
            d[inject_at[1], inject_at[0]] = corrupted_value
        if sweep == 3:
            d = gram_matrix(b_cols)  # the scrub: one preprocessor pass
    diag = np.clip(np.diag(d), 0.0, None)
    s_refresh = np.sort(np.sqrt(diag))[::-1][: min(m, n)]
    err_refresh = float(np.max(np.abs(s_refresh - sv)) / sv[0])

    # --- recompute: corrupt one dot product transiently (sweep 2 reads
    # a bad covariance once); subsequent sweeps recompute from columns.
    b = a.copy()
    for sweep in range(1, sweeps + 1):
        for rnd in cyclic_sweep(n):
            for i, j in rnd:
                bi, bj = b[:, i], b[:, j]
                cov = float(bi @ bj)
                if sweep == 2 and (i, j) == inject_at:
                    cov += 0.25 * float(np.sum(b * b)) / n  # transient upset
                if cov == 0.0:
                    continue
                p = textbook_rotation(float(bi @ bi), float(bj @ bj), cov)
                from repro.core.rotation import apply_rotation_columns

                apply_rotation_columns(b, i, j, p)
    s_recompute = np.sort(np.linalg.norm(b, axis=0))[::-1][: min(m, n)]
    err_recompute = float(np.max(np.abs(s_recompute - sv)) / sv[0])

    res = ExperimentResult(
        "ablation-resilience",
        "Soft-error injection: cached covariance vs recomputation",
        ["strategy", "injected", "sigma rel err after 6 sweeps"],
        notes="One covariance word corrupted by 25% of mean norm after "
              "sweep 1 (cached) / during sweep 2 (recompute).",
    )
    res.add_row("cached (Algorithm 1)", "persistent in D", err_cached)
    res.add_row("recompute ([12]-style)", "transient", err_recompute)
    res.add_row("cached + mid-run refresh", "scrubbed at sweep 3", err_refresh)
    res.check(
        "recomputation self-heals the upset",
        err_recompute < 1e-8,
        f"{err_recompute:.1e}",
    )
    res.check(
        "the cached design carries the upset into the results",
        err_cached > 1e3 * max(err_recompute, 1e-16),
        f"{err_cached:.1e}",
    )
    res.check(
        "one mid-run Gram refresh scrubs the upset",
        err_refresh < 1e-8,
        f"{err_refresh:.1e}",
    )
    return res
