"""Benchmark baseline/regression gate (``repro bench-compare``).

The paper's evaluation is a performance trajectory (Table I's
execution-time grid); this module gives the reproduction the same
discipline across PRs.  A pinned suite of micro-benchmarks — the five
registry engines, the vectorized engine at a larger size, the hw cycle
model, the serving path, and the observability primitives — is timed
and written to ``BENCH_CORE.json`` / ``BENCH_SERVE.json`` at the repo
root.  Subsequent runs compare against those committed baselines and
fail on regression.

Cross-machine comparability: every run also times a fixed NumPy
*machine probe* and the gate compares **probe-normalized** ratios::

    ratio = (current_s / current_probe_s) / (baseline_s / baseline_probe_s)

so a baseline recorded on a fast desktop still gates a slow CI runner.
All metrics are stored as seconds-per-unit (per decomposition, per
request, per scope), so ``--quick`` runs (fewer repetitions, identical
workloads) produce directly comparable numbers.

Entry points: :func:`run_core` / :func:`run_serve` produce result
dicts, :func:`compare` diffs them against a baseline, and the ``repro
bench-compare`` CLI (``make bench-baseline`` / ``make bench-check``)
drives the whole flow.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

__all__ = [
    "CORE_BASELINE",
    "DEFAULT_TOLERANCE",
    "SERVE_BASELINE",
    "compare",
    "core_cases",
    "format_rows",
    "load_baseline",
    "machine_probe",
    "run_core",
    "run_serve",
    "scale_metrics",
    "serve_cases",
    "write_baseline",
]

SCHEMA_VERSION = 1
DEFAULT_TOLERANCE = 0.20
#: Absolute slack below which a relative slowdown is not actionable:
#: microsecond-scale metrics (cache hits, span scopes) jitter by tens
#: of percent under scheduler noise, so the gate requires a regression
#: to be both >tolerance relative *and* >50 us/unit absolute.  A
#: broken fast path (e.g. cache misses falling through to the solver)
#: still trips by orders of magnitude.
ABSOLUTE_SLACK_S = 50e-6
CORE_BASELINE = "BENCH_CORE.json"
SERVE_BASELINE = "BENCH_SERVE.json"


def machine_probe(reps: int = 7) -> float:
    """Seconds for a fixed NumPy workload, the cross-machine yardstick.

    Dense matmul dominates both the probe and the engines, so the
    probe-normalized ratios cancel most of the hardware difference
    between the machine that recorded a baseline and the one checking
    against it.
    """
    rng = np.random.default_rng(20140519)
    a = rng.standard_normal((192, 192))
    best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        for _ in range(6):
            (a @ a).sum()
        best = min(best, time.perf_counter() - start)
    return best


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(max(1, reps)):
        best = min(best, fn())
    return best


def _engine_case(method: str, n: int = 64, m: int | None = None):
    """Seconds per decomposition of a fixed seeded matrix (min-of-reps)."""

    def run(reps: int) -> float:
        from repro.core.svd import hestenes_svd
        from repro.workloads import random_matrix

        a = random_matrix(m or n, n, seed=0)
        hestenes_svd(a, method=method, compute_uv=False)  # warm BLAS/caches

        def once() -> float:
            start = time.perf_counter()
            hestenes_svd(a, method=method, compute_uv=False)
            return time.perf_counter() - start

        return _best_of(once, reps)

    return run


def _precision_case(precision: str, n: int = 256):
    """Seconds per equal-criterion run of the vectorized engine.

    Unlike :func:`_engine_case` (fixed 6 sweeps, values only), this is
    the mixed-precision comparison protocol: both precisions drive the
    same convergence target (relative off-diagonal <= 1e-12, U/Vᵀ
    computed), so the pinned ratio between ``core.vectorized.256`` and
    ``core.vectorized_mixed.256`` is time-to-solution, not
    time-per-sweep.
    """

    def run(reps: int) -> float:
        from repro.core.svd import hestenes_svd
        from repro.workloads import random_matrix

        a = random_matrix(n, n, seed=0)

        def decompose():
            return hestenes_svd(
                a, method="vectorized", compute_uv=True, tol=1e-12,
                metric="relative", max_sweeps=30,
                engine_opts={"precision": precision},
            )

        decompose()  # warm BLAS/caches

        def once() -> float:
            start = time.perf_counter()
            decompose()
            return time.perf_counter() - start

        return _best_of(once, reps)

    return run


def _hw_estimate_case(reps: int) -> float:
    """Seconds per 512x512 cycle-model evaluation."""
    from repro.hw.timing_model import estimate_cycles

    estimate_cycles(512, 512)

    def once() -> float:
        start = time.perf_counter()
        estimate_cycles(512, 512)
        return time.perf_counter() - start

    return _best_of(once, reps)


def _span_disabled_case(reps: int) -> float:
    """Seconds per disabled (no tracer) span scope."""
    from repro.obs import span

    iters = 20_000

    def once() -> float:
        start = time.perf_counter()
        for _ in range(iters):
            with span("bench.scope"):
                pass
        return (time.perf_counter() - start) / iters

    return _best_of(once, reps)


def _metric_inc_case(reps: int) -> float:
    """Seconds per labeled counter increment on a private registry."""
    from repro.obs.metrics import MetricsRegistry

    child = (
        MetricsRegistry()
        .counter("bench_ops", labelnames=("engine",))
        .labels(engine="bench")
    )
    iters = 20_000

    def once() -> float:
        start = time.perf_counter()
        for _ in range(iters):
            child.inc()
        return (time.perf_counter() - start) / iters

    return _best_of(once, reps)


def _serve_throughput_case(reps: int) -> float:
    """Seconds per served request, cache disabled (pure dispatch cost)."""
    from repro.serve import SVDServer
    from repro.workloads import random_matrix

    mats = [random_matrix(32, 16, seed=i) for i in range(24)]

    def once() -> float:
        with SVDServer(max_batch=8, max_wait_s=0.001, workers=2,
                       cache_bytes=None, compute_uv=False) as srv:
            start = time.perf_counter()
            for handle in srv.submit_many(mats):
                handle.result(timeout=120.0)
            return (time.perf_counter() - start) / len(mats)

    return _best_of(once, reps)


def _serve_cached_case(reps: int) -> float:
    """Seconds per cache-hit request (the memoized fast path)."""
    from repro.serve import SVDServer
    from repro.workloads import random_matrix

    a = random_matrix(32, 16, seed=0)

    def once() -> float:
        with SVDServer(max_batch=4, max_wait_s=0.001, workers=2,
                       compute_uv=False) as srv:
            srv.submit(a).result(timeout=120.0)  # populate the cache
            block, blocks = 20, 15
            best = float("inf")
            # Min over many short blocks: cache hits resolve
            # synchronously at ~30 us each, so the metric must come
            # from a clean scheduling window — one GC pause or
            # scheduler blip in a long block would poison it.
            for _ in range(blocks):
                start = time.perf_counter()
                for _ in range(block):
                    srv.submit(a).result(timeout=120.0)
                best = min(best, (time.perf_counter() - start) / block)
            return best

    return _best_of(once, reps)


def _stream_topk_case(reps: int) -> float:
    """Seconds per rank-8 streamed truncation (merge-and-truncate driver).

    Exercises the out-of-core pipeline end to end — block chunking,
    per-block compression, and the merge's small dense SVDs — on a
    request-sized matrix, so a regression in any stream layer moves it.
    """
    from repro.stream.drivers import topk_svd
    from repro.workloads import random_matrix

    a = random_matrix(96, 48, seed=3)

    def once() -> float:
        start = time.perf_counter()
        topk_svd(a, 8, driver="merge", block_size=16)
        return time.perf_counter() - start

    return _best_of(once, reps)


def core_cases() -> dict:
    """The pinned core suite: name -> callable(reps) -> seconds-per-unit."""
    return {
        "core.reference.64": _engine_case("reference"),
        "core.modified.64": _engine_case("modified"),
        "core.blocked.64": _engine_case("blocked"),
        "core.vectorized.64": _engine_case("vectorized"),
        "core.vectorized.128": _engine_case("vectorized", n=128),
        "core.vectorized.256": _precision_case("fp64"),
        "core.vectorized_mixed.256": _precision_case("mixed"),
        "core.preconditioned.128x64": _engine_case("preconditioned", n=64, m=128),
        "stream.topk.96x48": _stream_topk_case,
        "hw.estimate.512": _hw_estimate_case,
        "obs.span_disabled": _span_disabled_case,
        "obs.counter_labeled_inc": _metric_inc_case,
    }


def _shard_request_case(reps: int) -> float:
    """Seconds per request through the sharded (multi-process) tier.

    Spawn cost dominates server construction (seconds per worker), so
    the server is built once and the metric times steady-state request
    round-trips — shared-memory framing, control-pipe hops, and worker
    dispatch — not process start-up.  Caches are disabled on both
    sides so every request crosses the process boundary.
    """
    from repro.serve.shard import ShardedSVDServer
    from repro.workloads import random_matrix

    mats = [random_matrix(32, 16, seed=i) for i in range(24)]
    with ShardedSVDServer(shards=2, max_wait_s=0.001, workers=1,
                          cache_bytes=None, worker_cache_bytes=None,
                          compute_uv=False) as srv:
        for handle in srv.submit_many(mats):  # warm both workers
            handle.result(timeout=120.0)

        def once() -> float:
            start = time.perf_counter()
            for handle in srv.submit_many(mats):
                handle.result(timeout=120.0)
            return (time.perf_counter() - start) / len(mats)

        return _best_of(once, reps)


def serve_cases() -> dict:
    """The pinned serve suite: name -> callable(reps) -> seconds-per-unit."""
    return {
        "serve.request.32x16": _serve_throughput_case,
        "serve.cache_hit.32x16": _serve_cached_case,
        "serve.shard_request.32x16": _shard_request_case,
    }


def _run(cases: dict, suite: str, *, quick: bool = False, log=None) -> dict:
    reps = 3 if quick else 5
    result = {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "quick": bool(quick),
        # The probe is cheap (~15 ms total), so it always gets the full
        # repetition count — normalization noise multiplies into every
        # ratio, quick mode included.
        "probe_s": machine_probe(),
        "metrics": {},
    }
    for name, fn in cases.items():
        seconds = float(fn(reps))
        result["metrics"][name] = seconds
        if log is not None:
            log(f"  {name:<28s} {seconds * 1e3:12.4f} ms/unit")
    return result


def run_core(*, quick: bool = False, log=None) -> dict:
    """Run the core suite; returns the ``BENCH_CORE.json`` payload."""
    return _run(core_cases(), "core", quick=quick, log=log)


def run_serve(*, quick: bool = False, log=None) -> dict:
    """Run the serve suite; returns the ``BENCH_SERVE.json`` payload."""
    return _run(serve_cases(), "serve", quick=quick, log=log)


def write_baseline(result: dict, path) -> str:
    """Write a suite result as a committed baseline JSON file."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return str(path)


def load_baseline(path) -> dict:
    """Load a baseline JSON; raises ``FileNotFoundError`` when absent."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return data


def scale_metrics(result: dict, factor: float) -> dict:
    """Return a copy of *result* with every metric multiplied by *factor*.

    The testing hook behind ``repro bench-compare --inject-slowdown``:
    a factor of 2.0 must trip the gate against any sane baseline.
    """
    scaled = dict(result)
    scaled["metrics"] = {
        name: value * factor for name, value in result["metrics"].items()
    }
    return scaled


def compare(current: dict, baseline: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> tuple[list[dict], bool]:
    """Diff *current* against *baseline* with probe normalization.

    Returns ``(rows, ok)``.  Each row carries ``name``, ``baseline_s``,
    ``current_s``, ``ratio`` (probe-normalized, 1.0 = unchanged) and
    ``status``: ``"ok"``, ``"slow"`` (ratio above ``1 + tolerance``
    *and* more than :data:`ABSOLUTE_SLACK_S` slower per unit),
    ``"missing"`` (metric dropped from the suite — also a failure, so a
    regression cannot hide by deleting its benchmark) or ``"new"``
    (no baseline yet; informational).
    """
    base_probe = float(baseline.get("probe_s") or 1.0)
    cur_probe = float(current.get("probe_s") or 1.0)
    rows: list[dict] = []
    ok = True
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        row = {"name": name, "baseline_s": base_metrics.get(name),
               "current_s": cur_metrics.get(name), "ratio": None}
        if name not in cur_metrics:
            row["status"] = "missing"
            ok = False
        elif name not in base_metrics:
            row["status"] = "new"
        else:
            normalized_base = base_metrics[name] / base_probe
            normalized_cur = cur_metrics[name] / cur_probe
            row["ratio"] = (
                normalized_cur / normalized_base if normalized_base > 0
                else float("inf")
            )
            slow = (
                row["ratio"] > 1.0 + tolerance
                and cur_metrics[name] - base_metrics[name] > ABSOLUTE_SLACK_S
            )
            row["status"] = "slow" if slow else "ok"
            if slow:
                ok = False
        rows.append(row)
    return rows, ok


def format_rows(rows: list[dict], tolerance: float) -> str:
    """Fixed-width report of a :func:`compare` result."""
    lines = [
        f"{'benchmark':<28s} {'baseline':>12s} {'current':>12s} "
        f"{'ratio':>7s}  status  (tolerance {tolerance:.0%})"
    ]
    for row in rows:
        base = (f"{row['baseline_s'] * 1e3:10.3f}ms"
                if row["baseline_s"] is not None else f"{'-':>12s}")
        cur = (f"{row['current_s'] * 1e3:10.3f}ms"
               if row["current_s"] is not None else f"{'-':>12s}")
        ratio = f"{row['ratio']:7.2f}" if row["ratio"] is not None else f"{'-':>7s}"
        lines.append(f"{row['name']:<28s} {base:>12s} {cur:>12s} "
                     f"{ratio}  {row['status']}")
    return "\n".join(lines)
