"""Plot-ready series for every figure, plus a terminal renderer.

The experiment runners (:mod:`repro.eval.experiments`) produce report
rows; this module reshapes them into ``{label: (x, y)}`` series a
plotting library (or the built-in ASCII renderer) consumes directly —
the exact curves of Figs 7-11.
"""

from __future__ import annotations

import math

from repro.eval.experiments import run_fig7, run_fig8, run_fig9, run_fig10, run_fig11

__all__ = [
    "fig7_series",
    "fig8_series",
    "fig9_series",
    "fig10_series",
    "fig11_series",
    "ascii_chart",
]


def fig7_series(**kwargs) -> dict[str, tuple[list, list]]:
    """Fig. 7 curves: time vs square dimension, one series per system."""
    result = run_fig7(**kwargs)
    labels = result.headers[1:]
    xs = [row[0] for row in result.rows]
    return {
        label: (xs, [row[i + 1] for row in result.rows])
        for i, label in enumerate(labels)
    }


def fig8_series(**kwargs) -> dict[str, tuple[list, list]]:
    """Fig. 8 curves: FPGA time vs rows, one series per column count."""
    result = run_fig8(**kwargs)
    series: dict[str, tuple[list, list]] = {}
    for row in result.rows:
        m, n, fpga = row[0], row[1], row[2]
        xs, ys = series.setdefault(f"n={n}", ([], []))
        xs.append(m)
        ys.append(fpga)
    return series


def fig9_series(**kwargs) -> dict[str, tuple[list, list]]:
    """Fig. 9 curves: speedup vs rows, one series per column count."""
    result = run_fig9(**kwargs)
    series: dict[str, tuple[list, list]] = {}
    for row in result.rows:
        m, n, speedup = row[0], row[1], row[4]
        xs, ys = series.setdefault(f"n={n}", ([], []))
        xs.append(m)
        ys.append(speedup)
    return series


def fig10_series(**kwargs) -> dict[str, tuple[list, list]]:
    """Fig. 10 curves: mean |cov| vs sweep, one series per size."""
    result = run_fig10(**kwargs)
    sweeps = list(range(len(result.rows[0]) - 1))
    return {f"n={row[0]}": (sweeps, list(row[1:])) for row in result.rows}


def fig11_series(**kwargs) -> dict[str, tuple[list, list]]:
    """Fig. 11 curves: mean |cov| vs sweep, one series per row count."""
    result = run_fig11(**kwargs)
    sweeps = list(range(len(result.rows[0]) - 1))
    return {f"m={row[0]}": (sweeps, list(row[1:])) for row in result.rows}


def ascii_chart(
    series: dict[str, tuple[list, list]],
    *,
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render ``{label: (x, y)}`` series as a terminal scatter chart.

    One marker character per series (a, b, c, ...); overlapping points
    show the later series.  Log-scale y handles the convergence plots'
    ten-decade ranges.
    """
    if not series:
        raise ValueError("series must be non-empty")
    if width < 8 or height < 4:
        raise ValueError("chart too small")

    def ty(v: float) -> float:
        if not logy:
            return v
        return math.log10(max(v, 1e-300))

    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [ty(y) for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10**y_hi:.1e}" if logy else f"{y_hi:.3g}"
    bot_label = f"{10**y_lo:.1e}" if logy else f"{y_lo:.3g}"
    lines.append(f"{top_label:>10} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{bot_label:>10} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<10.6g}" + " " * max(width - 20, 1) + f"{x_hi:>8.6g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={label}" for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
