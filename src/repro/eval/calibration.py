"""Transparent calibration of the comparator timing models.

The MATLAB/MKL/GPU curves in Figs 7-9 cannot be rerun, so
:mod:`repro.baselines.sw_model` and :mod:`repro.baselines.gpu_model`
carry calibrated constants.  This module makes the calibration
*reproducible*: given the paper's anchors, it solves for the constants
and verifies the shipped values — so a reviewer can see exactly which
facts pinned which numbers, and the test suite guards against silent
drift between the anchors and the models.

Anchors used (all from the paper; see eval/paper_data.py):

* A1 — speedup band minimum ~3.8x, binding at (m, n) = (256, 256):
  fixes the MATLAB effective rate at k = 256.
* A2 — square crossover "slows down when the dimensions over 512":
  MATLAB ~ FPGA at n = 1024, fixing the rate at k = 1024.
  A1 + A2 are consistent with a rate linear in the small dimension —
  the shipped ``rate_slope`` model.
* A3 — MKL crossover at ~512 (Fig. 7 ordering): fixes the MKL slope.
* A4 — GPU slower than MATLAB at 512, faster at 1024 ("speedups only
  for dimensions greater than 1000"): brackets the GPU ramp.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gkr_svd import gkr_flops
from repro.baselines.gpu_model import GPU_8800_MODEL
from repro.baselines.sw_model import MATLAB_MODEL, MKL_MODEL
from repro.eval.paper_data import SPEEDUP_BAND, TABLE1_SECONDS

__all__ = ["CalibrationReport", "calibrate_matlab_slope", "verify_calibration"]


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of re-deriving a model constant from paper anchors."""

    name: str
    derived: float
    shipped: float
    anchor: str

    @property
    def agreement(self) -> float:
        """shipped / derived — 1.0 means the constant matches exactly."""
        if self.derived == 0:
            return float("inf")
        return self.shipped / self.derived


def calibrate_matlab_slope() -> CalibrationReport:
    """Re-derive the MATLAB rate slope from anchor A1.

    A1: the minimum of the Fig. 9 band is ~3.8x and the binding cell is
    the square 256 x 256 (largest column count, smallest aspect):

        speedup = t_matlab / t_fpga
        t_matlab = flops_sv(256, 256) / (slope * 256)
        => slope = flops / (256 * speedup_min * t_fpga)

    with ``t_fpga`` taken from the paper's own Table I (0.033 s).
    """
    speedup_min = SPEEDUP_BAND[0]
    t_fpga = TABLE1_SECONDS[(256, 256)]
    flops = gkr_flops(256, 256)
    derived = flops / (256.0 * speedup_min * t_fpga)
    return CalibrationReport(
        name="MATLAB rate_slope",
        derived=derived,
        shipped=MATLAB_MODEL.rate_slope,
        anchor="A1: 3.8x minimum at 256x256 against Table I's 33 ms",
    )


def verify_calibration() -> list[CalibrationReport]:
    """Re-derive every calibratable constant and compare to shipped.

    Returns one report per constant; the tests assert agreement within
    modelling slack (the shipped constants also balance the secondary
    anchors, so exact equality is not expected).
    """
    reports = [calibrate_matlab_slope()]

    # A3: MKL ~ FPGA at the square 512 point (Fig. 7 crossover).
    t_fpga_512 = TABLE1_SECONDS[(512, 512)]
    flops_512 = gkr_flops(512, 512)
    derived_mkl = flops_512 / (512.0 * t_fpga_512) - MKL_MODEL.overhead_s
    reports.append(
        CalibrationReport(
            name="MKL rate_slope",
            derived=flops_512 / (512.0 * t_fpga_512),
            shipped=MKL_MODEL.rate_slope,
            anchor="A3: MKL crossover at the square 512 point",
        )
    )

    # A4: the GPU must sit between "slower than MATLAB at 512" and
    # "faster at 1024"; report the implied rate bracket at k = 1024.
    t_matlab_1024 = MATLAB_MODEL.seconds(1024, 1024)
    flops_uv_1024 = gkr_flops(1024, 1024, compute_uv=True)
    required_rate = flops_uv_1024 / t_matlab_1024
    reports.append(
        CalibrationReport(
            name="GPU rate at k=1024",
            derived=required_rate,
            shipped=GPU_8800_MODEL.rate(1024, 1024),
            anchor="A4: GPU overtakes MATLAB between 512 and 1024",
        )
    )
    return reports
