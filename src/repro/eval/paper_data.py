"""Digitized data and claims from the paper's evaluation section.

Everything the evaluation harness compares against lives here, with the
exact provenance of each number:

* Table I — execution seconds of the FPGA design (grid of dimensions).
  Axis note: the printed header reads "m \\ n", but the surrounding text
  says execution time is dominated by the *column* count while rows
  "have smaller impact"; the grid matches the architecture only if the
  outer axis is the column dimension.  We store it as
  ``TABLE1_SECONDS[(n, m)]`` under that reading (DESIGN.md §5).
* Table II — resource utilization fractions.
* Fig. 9 — the headline speedup band.
* Section VI-B — published comparison points for the GPU Hestenes
  implementation [11] and the fixed-point FPGA design [12] (the
  running text swaps those two citations; data stored under the
  reference list's assignment).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE1_SECONDS",
    "TABLE2_UTILIZATION",
    "SPEEDUP_BAND",
    "GPU_HESTENES_MS",
    "FIXED_POINT_FPGA",
    "CLOCK_HZ",
    "SWEEPS",
    "Claim",
    "CLAIMS",
]

#: Execution time in seconds, keyed by (column dimension n, row dimension m).
TABLE1_SECONDS: dict[tuple[int, int], float] = {
    (128, 128): 4.39e-3, (128, 256): 6.30e-3, (128, 512): 1.01e-2, (128, 1024): 1.79e-2,
    (256, 128): 2.52e-2, (256, 256): 3.30e-2, (256, 512): 4.84e-2, (256, 1024): 7.94e-2,
    (512, 128): 1.70e-1, (512, 256): 2.01e-1, (512, 512): 2.63e-1, (512, 1024): 3.87e-1,
    (1024, 128): 1.23, (1024, 256): 1.35, (1024, 512): 1.61, (1024, 1024): 2.01,
}

#: Table II: fraction of the XC5VLX330 consumed.
TABLE2_UTILIZATION = {"lut": 0.89, "bram": 0.91, "dsp": 0.53}

#: Fig. 9 headline: "speedups ... range from 3.8x to 43.6x for matrices
#: with column sizes from 128 to 256 and row dimensions from 128 to 2048".
SPEEDUP_BAND = (3.8, 43.6)

#: Section VI-B: GPU Hestenes [11] execution times (milliseconds).
GPU_HESTENES_MS = {(128, 128): 106.90, (256, 256): 1022.92}

#: Section VI-B: fixed-point FPGA design [12] — largest shape and its time.
FIXED_POINT_FPGA = {"max_shape": (128, 32), "anchor_shape": (127, 32),
                    "anchor_seconds": 24.3143e-3}

CLOCK_HZ = 150e6
SWEEPS = 6


@dataclass(frozen=True)
class Claim:
    """A qualitative claim from the paper that experiments must check."""

    ident: str
    text: str
    source: str


CLAIMS = (
    Claim(
        "columns-dominate",
        "Execution time grows significantly with the column count; row "
        "count has smaller impact",
        "Section VI-B, first paragraph",
    ),
    Claim(
        "fpga-wins-small",
        "Better efficiency than software solutions for dimensions under 512",
        "Section VI-B / Fig. 7",
    ),
    Claim(
        "fpga-loses-large",
        "Execution slows down relative to software when dimensions exceed "
        "512 (I/O throughput limits)",
        "Section VI-B / Fig. 7",
    ),
    Claim(
        "row-growth-slow",
        "Growing the row count causes a comparatively slow increase in "
        "execution time at fixed column dimension",
        "Section VI-B / Fig. 8",
    ),
    Claim(
        "speedup-band",
        "Speedups of 3.8x-43.6x over MATLAB for n in [128, 256], m in "
        "[128, 2048]",
        "Abstract / Fig. 9",
    ),
    Claim(
        "six-sweeps-converge",
        "Reasonable convergence within 6 iterations for matrices of "
        "dimensions no greater than 2048",
        "Section VI-C / Fig. 10",
    ),
    Claim(
        "rows-dont-hurt-convergence",
        "Convergence behaviour is similar across row dimensions at fixed "
        "column size 1024",
        "Section VI-C / Fig. 11",
    ),
    Claim(
        "beats-gpu-hestenes",
        "Faster than the GPU Hestenes implementation (106.90 ms / "
        "1022.92 ms at 128/256 square)",
        "Section VI-B",
    ),
    Claim(
        "beats-fixed-point",
        "More than 5x speedup over the fixed-point FPGA design's "
        "24.31 ms (and no 32x128 size ceiling)",
        "Section VI-B",
    ),
)
