"""Phase-share baseline/regression gate (``repro prof-compare``).

``repro bench-compare`` answers *whether* the engines got slower;
this gate answers *where*.  A pinned instrumented workload — the
vectorized engine at n=160 under a round-detail tracer with the
sampling profiler running — produces per-phase CPU cost
(``core.sweep`` / ``core.round`` / ``core.finalize``), committed as
``PROF_CORE.json`` at the repo root.  Subsequent runs compare against
the committed baseline and fail when a phase's cost grew, naming the
phase — the per-stage discipline of the paper's Table I cycle
breakdown, applied to our own hot path across PRs.

Metrics are **seconds per decomposition, per phase**::

    phase_s = (phase_samples / total_samples) * (wall_s / runs)

so they compose the sampler's statistical attribution with a measured
wall clock, and the same probe normalization as benchgate makes them
comparable across machines.  Shares alone would renormalize away a
uniform slowdown; seconds-per-run keeps both the *where* and the *how
much*.

The run also records the attributed fraction; a run where sampling
stopped seeing span phases (< :data:`MIN_ATTRIBUTION`) fails outright
rather than producing a vacuously-passing empty profile.

Entry points mirror :mod:`repro.eval.benchgate`: :func:`run_core`
produces the result dict, :func:`compare` diffs it against a baseline,
:func:`scale_phase` is the ``--inject-slowdown`` self-test hook, and
the ``repro prof-compare`` CLI (``make prof-baseline`` /
``make prof-check``) drives the flow.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.eval.benchgate import machine_probe

__all__ = [
    "CORE_BASELINE",
    "DEFAULT_TOLERANCE",
    "MIN_ATTRIBUTION",
    "PHASES",
    "compare",
    "format_rows",
    "hottest_phase",
    "load_baseline",
    "run_core",
    "scale_phase",
    "write_baseline",
]

SCHEMA_VERSION = 1
CORE_BASELINE = "PROF_CORE.json"
#: Phase shares jitter more than wall clocks (finite samples, scheduler
#: noise), so the default tolerance is looser than benchgate's 20%; an
#: injected 2x hot phase still trips it by a wide margin.
DEFAULT_TOLERANCE = 0.60
#: A phase must also be absolutely slower than this per run to fail the
#: gate — small phases (finalize is ~1 ms of a ~60 ms solve) can double
#: their share on sampling noise alone without meaning anything.
ABSOLUTE_SLACK_S = 4e-3
#: Minimum fraction of samples attributed to a named span phase for the
#: run to be trustworthy at all.
MIN_ATTRIBUTION = 0.90
#: The pinned phase set: every baseline and every run reports exactly
#: these (0.0 when unobserved), so a phase cannot vanish from the gate
#: by dropping out of one noisy run.
PHASES = ("core.sweep", "core.round", "core.finalize", "(unattributed)")


def run_core(*, quick: bool = False, hz: float = 400.0, n: int = 160,
             log=None) -> dict:
    """Profile the pinned vectorized workload; returns the baseline payload.

    Runs ``hestenes_svd(a, method="vectorized")`` repeatedly in the
    calling thread under a round-detail tracer while a background
    :class:`~repro.obs.prof.SampleProfiler` attributes samples to span
    phases, then converts shares into per-phase seconds per run.
    """
    from repro.core.svd import hestenes_svd
    from repro.obs.prof import SampleProfiler
    from repro.obs.tracer import Tracer, use_tracer
    from repro.workloads import random_matrix

    runs = 4 if quick else 8
    a = random_matrix(n, n, seed=7)
    hestenes_svd(a, method="vectorized", compute_uv=True)  # warm BLAS/caches
    profiler = SampleProfiler(hz=hz)
    tracer = Tracer(detail="round")
    start = time.perf_counter()
    with use_tracer(tracer), profiler:
        for _ in range(runs):
            hestenes_svd(a, method="vectorized", compute_uv=True)
    wall_s = time.perf_counter() - start
    profile = profiler.profile()
    wall_per_run = wall_s / runs
    total = profile.total_samples
    metrics = {}
    for phase in PHASES:
        share = (profile.phase_counts.get(phase, 0) / total) if total else 0.0
        metrics[f"prof.{phase}"] = share * wall_per_run
    result = {
        "schema": SCHEMA_VERSION,
        "suite": "prof-core",
        "quick": bool(quick),
        "hz": float(hz),
        "n": int(n),
        "runs": runs,
        "probe_s": machine_probe(),
        "wall_per_run_s": wall_per_run,
        "total_samples": total,
        "attributed_fraction": profile.attributed_fraction(),
        "metrics": metrics,
    }
    if log is not None:
        log(f"  {'workload':<28s} vectorized n={n}, {runs} runs, "
            f"{total} samples at {hz:g} Hz")
        log(f"  {'attributed':<28s} {result['attributed_fraction']:.1%}")
        for name, seconds in metrics.items():
            log(f"  {name:<28s} {seconds * 1e3:12.4f} ms/run")
    return result


def write_baseline(result: dict, path) -> str:
    """Write a profiling result as the committed baseline JSON."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return str(path)


def load_baseline(path) -> dict:
    """Load a baseline JSON; raises ``FileNotFoundError`` when absent."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return data


def scale_phase(result: dict, phase: str, factor: float) -> dict:
    """Copy of *result* with one phase's seconds multiplied by *factor*.

    The testing hook behind ``repro prof-compare --inject-slowdown``: a
    2x injection on the hottest phase must trip the gate against any
    sane baseline, proving the gate can actually see a hot phase move.
    """
    key = phase if phase.startswith("prof.") else f"prof.{phase}"
    if key not in result.get("metrics", {}):
        raise KeyError(f"unknown phase metric {key!r}")
    scaled = dict(result)
    scaled["metrics"] = dict(result["metrics"])
    scaled["metrics"][key] *= factor
    return scaled


def hottest_phase(result: dict) -> str:
    """Name of the named phase with the largest per-run cost."""
    named = {
        name: seconds for name, seconds in result.get("metrics", {}).items()
        if name != "prof.(unattributed)"
    }
    if not named:
        raise ValueError("result has no named phase metrics")
    return max(named, key=named.get)


def compare(current: dict, baseline: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> tuple[list[dict], bool]:
    """Diff *current* against *baseline* with probe normalization.

    Returns ``(rows, ok)``.  Phase rows carry ``name``, ``baseline_s``,
    ``current_s``, ``ratio`` (probe-normalized) and ``status`` —
    ``"ok"``, ``"hot"`` (grew past tolerance *and*
    :data:`ABSOLUTE_SLACK_S` per run), ``"missing"`` (also a failure)
    or ``"new"``.  A leading ``attribution`` row fails the gate when
    the current run attributed < :data:`MIN_ATTRIBUTION` of samples —
    an untrustworthy profile must not pass silently.
    """
    rows: list[dict] = []
    ok = True
    attributed = float(current.get("attributed_fraction", 0.0))
    att_ok = attributed >= MIN_ATTRIBUTION
    rows.append({
        "name": "attribution", "baseline_s": None, "current_s": None,
        "ratio": attributed, "status": "ok" if att_ok else "low",
    })
    if not att_ok:
        ok = False
    base_probe = float(baseline.get("probe_s") or 1.0)
    cur_probe = float(current.get("probe_s") or 1.0)
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        row = {"name": name, "baseline_s": base_metrics.get(name),
               "current_s": cur_metrics.get(name), "ratio": None}
        if name not in cur_metrics:
            row["status"] = "missing"
            ok = False
        elif name not in base_metrics:
            row["status"] = "new"
        else:
            normalized_base = base_metrics[name] / base_probe
            normalized_cur = cur_metrics[name] / cur_probe
            row["ratio"] = (
                normalized_cur / normalized_base if normalized_base > 0
                else float("inf")
            )
            hot = (
                row["ratio"] > 1.0 + tolerance
                and cur_metrics[name] - base_metrics[name] > ABSOLUTE_SLACK_S
            )
            row["status"] = "hot" if hot else "ok"
            if hot:
                ok = False
        rows.append(row)
    return rows, ok


def format_rows(rows: list[dict], tolerance: float) -> str:
    """Fixed-width report of a :func:`compare` result."""
    lines = [
        f"{'phase':<28s} {'baseline':>12s} {'current':>12s} "
        f"{'ratio':>7s}  status  (tolerance {tolerance:.0%})"
    ]
    for row in rows:
        if row["name"] == "attribution":
            lines.append(
                f"{'attribution':<28s} {'-':>12s} "
                f"{row['ratio']:>11.1%} {'-':>8s}  {row['status']}"
            )
            continue
        base = (f"{row['baseline_s'] * 1e3:10.3f}ms"
                if row["baseline_s"] is not None else f"{'-':>12s}")
        cur = (f"{row['current_s'] * 1e3:10.3f}ms"
               if row["current_s"] is not None else f"{'-':>12s}")
        ratio = f"{row['ratio']:7.2f}" if row["ratio"] is not None else f"{'-':>7s}"
        lines.append(f"{row['name']:<28s} {base:>12s} {cur:>12s} "
                     f"{ratio}  {row['status']}")
    return "\n".join(lines)
