"""Systematic accuracy study across engines and conditioning.

The paper evaluates accuracy indirectly, "through analysis of the
convergence properties" (Section VI-C).  A library release needs the
direct version: singular-value error, factor orthogonality, and
reconstruction residual for every engine across condition numbers —
including the known weakness of Gram-based methods (small singular
values resolved only to ``sqrt(eps) * sigma_max``, because forming
``AᵀA`` squares the condition number) against the reference and
Golub-Reinsch engines, which do not square it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gkr_svd import golub_reinsch_svd
from repro.core.block_jacobi import block_jacobi_svd
from repro.core.convergence import ConvergenceCriterion
from repro.core.svd import hestenes_svd
from repro.eval.report import ExperimentResult
from repro.util.numerics import orthogonality_error, singular_value_error
from repro.workloads.generators import conditioned_matrix

__all__ = ["run_accuracy_study", "ENGINES"]

_CRIT_SWEEPS = 20


def _run_engine(name: str, a: np.ndarray):
    if name == "golub_reinsch":
        return golub_reinsch_svd(a)
    if name == "block_jacobi":
        return block_jacobi_svd(
            a, block=4, criterion=ConvergenceCriterion(max_sweeps=_CRIT_SWEEPS)
        )
    if name == "modified+polish":
        from repro.core.modified import modified_svd

        return modified_svd(
            a, criterion=ConvergenceCriterion(max_sweeps=_CRIT_SWEEPS), polish=True
        )
    return hestenes_svd(a, method=name, max_sweeps=_CRIT_SWEEPS)


ENGINES = (
    "reference",
    "modified",
    "blocked",
    "modified+polish",
    "block_jacobi",
    "preconditioned",
    "golub_reinsch",
)

#: Engines that iterate on the *cached* Gram matrix (Algorithm 1): the
#: cache drifts from the true BᵀB at the eps*cond^2 level, limiting tiny
#: singular values and U-orthogonality.  (block_jacobi re-forms its
#: Gram fresh per block pair, so it behaves like a direct method.)
CACHED_GRAM = frozenset({"modified", "blocked"})
DIRECT = (
    "reference",
    "modified+polish",
    "block_jacobi",
    "preconditioned",
    "golub_reinsch",
)


def run_accuracy_study(
    *,
    m: int = 48,
    n: int = 24,
    conds=(1e0, 1e4, 1e8, 1e12),
    seed: int = 77,
) -> ExperimentResult:
    """Accuracy grid: engines x condition numbers.

    Metrics per cell: max relative singular-value error (vs LAPACK),
    U-orthogonality error, reconstruction residual.  Shape checks
    encode the expected hierarchy:

    * every engine is near machine precision for well-conditioned
      inputs;
    * the direct engines (reference Hestenes, Golub-Reinsch) hold
      ~1e-13 relative error out to cond 1e12;
    * the Gram-based engines degrade like ``eps * cond`` — accurate
      until cond ~ 1e8, then visibly worse than the direct engines
      (the documented trade-off of Algorithm 1's caching).
    """
    res = ExperimentResult(
        "accuracy",
        f"Engine accuracy vs condition number ({m}x{n} matrices)",
        ["engine", "cond", "sigma rel err", "U orth err", "recon err"],
    )
    eps = np.finfo(np.float64).eps
    errors: dict[tuple[str, float], float] = {}
    for cond in conds:
        a = conditioned_matrix(m, n, cond, seed=(seed, int(np.log10(cond))))
        s_ref = np.linalg.svd(a, compute_uv=False)
        for engine in ENGINES:
            out = _run_engine(engine, a)
            serr = singular_value_error(s_ref, out.s)
            uerr = orthogonality_error(out.u)
            rerr = out.reconstruction_error(a)
            errors[(engine, cond)] = serr
            res.add_row(engine, cond, serr, uerr, rerr)

    res.check(
        "all engines near machine precision at cond 1",
        all(errors[(e, conds[0])] < 1e-12 for e in ENGINES),
    )
    res.check(
        "direct engines stay accurate at the worst conditioning",
        all(errors[(e, conds[-1])] < 1e-10 for e in DIRECT),
        ", ".join(f"{e}: {errors[(e, conds[-1])]:.1e}" for e in DIRECT),
    )
    res.check(
        "cached-Gram engines degrade ~ eps * cond (visible by 1e12)",
        all(
            errors[(e, conds[-1])] > 10 * errors[("reference", conds[-1])]
            and errors[(e, conds[-1])] < 1e5 * eps * conds[-1]
            for e in CACHED_GRAM
        ),
        ", ".join(f"{e}: {errors[(e, conds[-1])]:.1e}" for e in CACHED_GRAM),
    )
    # Orthogonality tiers: engines that rotate the columns until the
    # *actual* dot products vanish (reference, polish, Golub-Reinsch)
    # keep machine-precision factors; block_jacobi re-forms each Gram
    # fresh but still stops on a Gram-resolution criterion, leaving a
    # mild (1e-6-ish) drift at extreme conditioning.
    column_exact = ("reference", "modified+polish", "preconditioned", "golub_reinsch")
    res.check(
        "column-exact engines keep orthonormal factors at every conditioning",
        all(row[3] < 1e-8 for row in res.rows if row[0] in column_exact),
    )
    res.check(
        "block_jacobi U-orthogonality stays below 1e-4 everywhere",
        all(row[3] < 1e-4 for row in res.rows if row[0] == "block_jacobi"),
    )
    res.check(
        "cached-Gram engines lose U-orthogonality beyond cond ~1e4 "
        "(the caching trade-off; polish repairs it)",
        any(
            row[3] > 1e-2
            for row in res.rows
            if row[0] in CACHED_GRAM and row[1] >= 1e8
        )
        and all(
            row[3] < 1e-10
            for row in res.rows
            if row[0] == "modified+polish"
        ),
    )
    return res
